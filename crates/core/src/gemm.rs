//! Engine-executed dense GEMM: the feature-transform half of a GNN layer.
//!
//! A GCN layer is `spmm(A, X · W)` — the aggregation SpMM is the engine's
//! home turf, but the dense `X · W` half previously ran on a naive
//! triple loop outside the engine. This module puts it on the same
//! machinery: the output comes from the engine's [`crate::arena`], the
//! kernel is the register-tiled, cache-panelled band kernel in
//! [`crate::datapath`] (same runtime wide-lane dispatch as the SpMM
//! path), and rows are distributed across the same worker pool under the
//! engine's [`SchedPolicy`]:
//!
//! * `Static` — one contiguous band span per worker, carved with
//!   `split_at_mut`;
//! * `Stealing` / `Auto` — bands self-schedule off a shared atomic
//!   counter, so a worker that drew cheap bands simply takes more. (GEMM
//!   bands are uniform-cost, so `Auto` needs no skew inspection here —
//!   self-scheduling is the strictly-safer default.)
//!
//! Distribution is safe code throughout (the only `unsafe` on this path
//! is the runtime-gated `#[target_feature]` dispatch in
//! `datapath::wide`): disjoint `&mut` band slices are moved into worker
//! closures, either directly (static spans) or through take-once
//! `Mutex<Option<..>>` slots (self-scheduled).
//!
//! `k` *is* blocked ([`crate::tuning::gemm_kc`]): each band sweeps its
//! `k` range in ascending L2-sized panels so the `B` panel a microkernel
//! streams stays cache-resident at dim 128–512. Blocking does **not**
//! change results: accumulators are seeded from the (zero-initialized)
//! output and stored back per block, so each output element still
//! accumulates in the naive loop's ascending-`k` order and results stay
//! bit-equal to [`naive ikj`] GEMM up to the sign of zeros — the
//! property the GCN fused-vs-unfused oracle tests lean on. The one
//! exception is opt-in [`crate::ExecEngine::with_fast_math`], which
//! permits FMA contraction inside a block (documented carve-out,
//! DESIGN.md §2.11).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mpspmm_sparse::{DenseMatrix, SparseFormatError};

use crate::datapath::{gemm_band, gemm_pack_width, pack_b, PathKind};
use crate::engine::{ExecEngine, SchedPolicy};
use crate::pool::ScopedJob;
use crate::tuning::{gemm_kc, CacheModel, GEMM_BAND_ROWS};

/// A take-once slot holding one output band's starting row and `&mut`
/// slice, claimed by exactly one self-scheduled worker.
type BandSlot<'a> = Mutex<Option<(usize, &'a mut [f32])>>;

impl ExecEngine {
    /// Dense row-major GEMM `A · B` on the engine: arena-backed output,
    /// register-tiled band kernel, rows parallelized across the worker
    /// pool under the engine's scheduling policy. Updates the
    /// [`crate::EngineStats::gemm_panels`] and
    /// [`crate::EngineStats::gemm_ns`] counters.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when
    /// `a.cols() != b.rows()`.
    pub fn gemm(
        &self,
        a: &DenseMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        if a.cols() != b.rows() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            });
        }
        let start = Instant::now();
        let (m, n) = (a.rows(), b.cols());
        let mut out = self.arena.take_zeroed(m * n);
        let rp = self.data_path.resolve_fast(n, self.fast_math);
        if rp.fastmath {
            self.fastmath_runs.fetch_add(1, Ordering::Relaxed);
        }
        let kc = if self.k_blocking {
            gemm_kc(a.cols(), rp.panel, &CacheModel::default())
        } else {
            // Ablation mode: one full-`k` "block" — the pre-blocking
            // sweep. Bitwise identical, only locality differs.
            a.cols().max(1)
        };
        if a.cols() > 0 {
            self.kblocks
                .fetch_add(a.cols().div_ceil(kc.max(1)) as u64, Ordering::Relaxed);
        }
        // Pack `B` once into lane-width column blocks (arena-recycled)
        // so every band's microkernel streams contiguous lines instead
        // of striding `n` floats per `k` step. Pure data movement —
        // results stay bitwise identical (see `gemm_rows_body`).
        let packed = match gemm_pack_width(&rp) {
            Some(w) if a.cols() > 0 && n >= w => {
                let mut buf = self.arena.take_zeroed((n / w) * a.cols() * w);
                pack_b(b, w, &mut buf);
                buf
            }
            _ => Vec::new(),
        };
        let pslab: &[f32] = &packed;
        let band_count = m.div_ceil(GEMM_BAND_ROWS.max(1));
        let eff = self.workers.min(band_count).max(1);
        let mut panels = 0u64;
        // Narrow outputs (GNN hidden/class widths) on one worker skip
        // the band/panel machinery: at `n <= 4` the per-band setup costs
        // more than the whole fold, and the register-array loop computes
        // the exact naive `ikj` order — bitwise identical output.
        let narrow = (1..=4).contains(&n) && a.cols() <= 32 && rp.kind != PathKind::Scalar;
        if narrow && eff <= 1 {
            gemm_narrow(a, b, &mut out);
            panels += band_count as u64;
        } else if eff <= 1 {
            for (bi, band) in out.chunks_mut(GEMM_BAND_ROWS * n.max(1)).enumerate() {
                panels += gemm_band(a, b, pslab, bi * GEMM_BAND_ROWS, &rp, kc, band);
            }
        } else if self.sched_policy == SchedPolicy::Static {
            // One contiguous run of bands per worker: band ownership is
            // expressed directly in the borrow checker by splitting the
            // output into disjoint `&mut` spans.
            let per_worker = band_count.div_ceil(eff);
            let total_panels = AtomicU64::new(0);
            let mut rest: &mut [f32] = &mut out;
            let mut row0 = 0usize;
            let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(eff);
            for _ in 0..eff {
                let span_rows = (per_worker * GEMM_BAND_ROWS).min(rest.len() / n.max(1));
                if span_rows == 0 {
                    break;
                }
                let (span, tail) = std::mem::take(&mut rest).split_at_mut(span_rows * n);
                rest = tail;
                let start_row = row0;
                row0 += span_rows;
                let total_panels = &total_panels;
                jobs.push(Box::new(move || {
                    let mut local = 0u64;
                    for (bi, band) in span.chunks_mut(GEMM_BAND_ROWS * n.max(1)).enumerate() {
                        local +=
                            gemm_band(a, b, pslab, start_row + bi * GEMM_BAND_ROWS, &rp, kc, band);
                    }
                    total_panels.fetch_add(local, Ordering::Relaxed);
                }));
            }
            self.pool.get().scope_run(jobs);
            panels = total_panels.into_inner();
        } else {
            // Self-scheduled bands: each band's `&mut` slice sits in a
            // take-once slot; workers claim slot indices off a shared
            // counter, so each band is executed exactly once and the
            // borrows never alias.
            let slots: Vec<BandSlot<'_>> = out
                .chunks_mut(GEMM_BAND_ROWS * n.max(1))
                .enumerate()
                .map(|(bi, band)| Mutex::new(Some((bi * GEMM_BAND_ROWS, band))))
                .collect();
            let next = AtomicUsize::new(0);
            let total_panels = AtomicU64::new(0);
            let jobs: Vec<ScopedJob<'_>> = (0..eff)
                .map(|_| {
                    let slots = &slots;
                    let next = &next;
                    let total_panels = &total_panels;
                    Box::new(move || {
                        let mut local = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= slots.len() {
                                break;
                            }
                            let (row_start, band) = slots[i]
                                .lock()
                                .unwrap()
                                .take()
                                .expect("band slot claimed exactly once");
                            local += gemm_band(a, b, pslab, row_start, &rp, kc, band);
                        }
                        total_panels.fetch_add(local, Ordering::Relaxed);
                    }) as ScopedJob<'_>
                })
                .collect();
            self.pool.get().scope_run(jobs);
            panels = total_panels.into_inner();
        }
        self.arena.put(packed);
        self.gemm_panels.fetch_add(panels, Ordering::Relaxed);
        self.gemm_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        DenseMatrix::from_vec(m, n, out)
    }
}

/// Width dispatch for the narrow single-worker path: the const width
/// keeps the per-row accumulators in registers.
fn gemm_narrow(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>, out: &mut [f32]) {
    match b.cols() {
        1 => gemm_narrow_fixed::<1>(a, b, out),
        2 => gemm_narrow_fixed::<2>(a, b, out),
        3 => gemm_narrow_fixed::<3>(a, b, out),
        4 => gemm_narrow_fixed::<4>(a, b, out),
        n => unreachable!("gemm_narrow called for width {n}"),
    }
}

/// Per-row `ikj` fold at const width `N == b.cols()`: ascending `k` per
/// output element, accumulators seeded from the zeroed destination —
/// exactly the naive loop's summation order, so the result is bitwise
/// equal to every other (non-FastMath) GEMM path in this module.
fn gemm_narrow_fixed<const N: usize>(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>, out: &mut [f32]) {
    let k = a.cols();
    for (r, orow) in out.chunks_exact_mut(N).enumerate() {
        let arow = a.row(r);
        let mut acc = [0.0f32; N];
        for (p, &av) in arow.iter().enumerate().take(k) {
            let brow = &b.row(p)[..N];
            for j in 0..N {
                acc[j] += av * brow[j];
            }
        }
        orow.copy_from_slice(&acc);
    }
}

#[cfg(test)]
mod tests {
    use crate::datapath::DataPath;
    use crate::engine::{ExecEngine, SchedPolicy};
    use mpspmm_sparse::DenseMatrix;

    /// The PR-1 naive loop (minus its zero-skip): the bit-level oracle.
    fn naive_gemm(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = a.row(i);
            let dst = &mut out[i * n..][..n];
            for (p, &av) in arow.iter().enumerate() {
                for (c, &bv) in dst.iter_mut().zip(b.row(p)) {
                    *c += av * bv;
                }
            }
            let _ = k;
        }
        DenseMatrix::from_vec(m, n, out).expect("oracle dims agree")
    }

    fn filled(rows: usize, cols: usize, salt: usize) -> DenseMatrix<f32> {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 7 + salt) % 17) as f32 * 0.125 - 1.0
        })
    }

    #[test]
    fn engine_gemm_matches_naive_bitwise_across_paths_and_policies() {
        for &path in &[DataPath::Scalar, DataPath::Vector, DataPath::Auto] {
            for &policy in &[
                SchedPolicy::Static,
                SchedPolicy::Stealing,
                SchedPolicy::Auto,
            ] {
                for &workers in &[1usize, 4] {
                    let engine = ExecEngine::with_sched_policy(workers, path, policy);
                    for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (37, 19, 23), (70, 16, 33)] {
                        let a = filled(m, k, 1);
                        let b = filled(k, n, 2);
                        let got = engine.gemm(&a, &b).expect("shapes agree");
                        let want = naive_gemm(&a, &b);
                        assert_eq!(
                            got.as_slice(),
                            want.as_slice(),
                            "m={m} k={k} n={n} path={path:?} policy={policy:?} workers={workers}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_blocked_gemm_stays_bitwise_exact_and_counts_blocks() {
        // k large enough that gemm_kc splits it into several blocks:
        // ascending blocks with output-seeded accumulators must preserve
        // the naive loop's per-element addition order exactly.
        let (m, k, n) = (9, 200, 256);
        let a = filled(m, k, 3);
        let b = filled(k, n, 4);
        let want = naive_gemm(&a, &b);
        for &workers in &[1usize, 4] {
            let engine = ExecEngine::with_data_path(workers, DataPath::Vector);
            let got = engine.gemm(&a, &b).expect("shapes agree");
            assert_eq!(got.as_slice(), want.as_slice(), "workers={workers}");
            let stats = engine.stats();
            assert!(stats.kblocks >= 1, "k-block counter advanced");
            engine.clear_cache();
            assert_eq!(engine.stats().kblocks, 0, "reset clears counter");
        }
    }

    #[test]
    fn fast_math_gemm_stays_within_contraction_tolerance() {
        let (m, k, n) = (7, 96, 128);
        let a = filled(m, k, 5);
        let b = filled(k, n, 6);
        let exact = ExecEngine::with_data_path(2, DataPath::Vector)
            .gemm(&a, &b)
            .unwrap();
        let engine = ExecEngine::with_data_path(2, DataPath::Vector).with_fast_math(true);
        let fast = engine.gemm(&a, &b).unwrap();
        for (g, w) in fast.as_slice().iter().zip(exact.as_slice()) {
            let tol = 1e-5 * w.abs().max(1.0);
            assert!((g - w).abs() <= tol, "fastmath gemm within tolerance");
        }
        if crate::fastmath_supported() {
            assert!(engine.stats().fastmath_runs > 0, "fma-proven CPU counts");
        } else {
            assert_eq!(engine.stats().fastmath_runs, 0);
            assert_eq!(fast.as_slice(), exact.as_slice(), "unproven CPU is exact");
        }
    }

    #[test]
    fn engine_gemm_handles_degenerate_shapes() {
        let engine = ExecEngine::with_data_path(2, DataPath::Auto);
        // k = 0: output is all zeros, not an error.
        let a = DenseMatrix::from_vec(3, 0, vec![]).unwrap();
        let b = DenseMatrix::from_vec(0, 4, vec![]).unwrap();
        let out = engine.gemm(&a, &b).expect("k=0 is a valid product");
        assert_eq!(out.rows(), 3);
        assert_eq!(out.cols(), 4);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        // Empty m and n.
        let e = DenseMatrix::from_vec(0, 5, vec![]).unwrap();
        let f = filled(5, 0, 0);
        assert_eq!(engine.gemm(&e, &filled(5, 3, 1)).unwrap().rows(), 0);
        assert_eq!(engine.gemm(&filled(2, 5, 1), &f).unwrap().cols(), 0);
    }

    #[test]
    fn engine_gemm_rejects_shape_mismatch_and_counts_panels() {
        let engine = ExecEngine::with_data_path(1, DataPath::Auto);
        let a = filled(4, 3, 0);
        let b = filled(5, 2, 0);
        assert!(engine.gemm(&a, &b).is_err());
        let ok = engine.gemm(&a, &filled(3, 8, 1)).expect("shapes agree");
        assert_eq!(ok.rows(), 4);
        let stats = engine.stats();
        assert!(stats.gemm_panels > 0, "panel counter advanced");
        assert!(stats.gemm_ns > 0, "gemm time recorded");
        engine.clear_cache();
        assert_eq!(engine.stats().gemm_panels, 0, "counters reset");
    }
}
