//! Ablation — the output-update policy, holding the schedule fixed.
//!
//! The paper's contribution is *selective* synchronization: atomic updates
//! only for partial rows. This ablation runs the **same merge-path
//! schedule** under three update policies and prices each on the GPU
//! model:
//!
//! * `selective`  — Algorithm 2 (atomics for partial rows only),
//! * `all-atomic` — every update atomic (GNNAdvisor's policy grafted onto
//!   the merge-path schedule),
//! * `serial-fixup` — no atomics; spanning rows resolved in a serial phase
//!   (the Merrill–Garland policy).
//!
//! Isolates the policy from the work decomposition: all three process the
//! identical per-thread non-zero ranges.

use mpspmm_bench::{banner, full_size_requested, geomean, load, SEED};
use mpspmm_core::{
    default_cost_for_dim, plan_from_schedule, thread_count, Flush, KernelPlan, MergePathSpmm,
    Schedule, MIN_THREADS,
};
use mpspmm_graphs::find_dataset;
use mpspmm_simt::{lower_with_policy, GpuConfig, LoweringPolicy};
use mpspmm_sparse::CsrMatrix;

const SAMPLE: [&str; 6] = [
    "Cora",
    "Pubmed",
    "email-Euall",
    "Nell",
    "com-Amazon",
    "Yeast",
];

fn with_flush(plan: &KernelPlan, flush: Flush) -> KernelPlan {
    let mut out = plan.clone();
    for tp in &mut out.threads {
        for seg in &mut tp.segments {
            seg.flush = flush;
        }
    }
    out
}

fn serial_fixup_variant(schedule: &Schedule, a: &CsrMatrix<f32>) -> KernelPlan {
    // Reuse the exact serial-fixup lowering via the core crate would give
    // a slightly different sharing rule; for an apples-to-apples policy
    // ablation we instead downgrade every atomic segment of the selective
    // plan to a carry.
    let mut plan = plan_from_schedule(schedule, a);
    for tp in &mut plan.threads {
        for seg in &mut tp.segments {
            if seg.flush == Flush::Atomic {
                seg.flush = Flush::Carry;
            }
        }
    }
    plan
}

fn main() {
    let full = full_size_requested();
    banner(
        "Ablation: atomics",
        "selective vs all-atomic vs serial-fixup on the SAME merge-path schedule",
        full,
    );
    println!("sample: {SAMPLE:?}, seed {SEED}, dim 16\n");

    let cfg = GpuConfig::rtx6000();
    let dim = 16;
    let cost = default_cost_for_dim(dim);
    println!(
        "{:<14} {:>12} {:>12} {:>14}  (kernel µs; lower is better)",
        "Graph", "selective", "all-atomic", "serial-fixup"
    );
    let (mut sel, mut alla, mut ser) = (Vec::new(), Vec::new(), Vec::new());
    for name in SAMPLE {
        let (_, a) = load(find_dataset(name).expect("in Table II"), full);
        let threads = thread_count(a.merge_items(), cost, MIN_THREADS);
        let schedule = MergePathSpmm::with_threads(threads).schedule(&a, dim);
        let selective = plan_from_schedule(&schedule, &a);
        let all_atomic = with_flush(&selective, Flush::Atomic);
        let serial = serial_fixup_variant(&schedule, &a);
        let price = |plan: &KernelPlan| {
            let run =
                lower_with_policy(plan, dim, cfg.lanes, LoweringPolicy::merge_path(), a.cols());
            mpspmm_simt::engine::simulate(&run, &cfg).micros
        };
        let (s, aa, sf) = (price(&selective), price(&all_atomic), price(&serial));
        println!("{name:<14} {s:>12.2} {aa:>12.2} {sf:>14.2}");
        sel.push(s);
        alla.push(aa);
        ser.push(sf);
    }
    println!(
        "\ngeomean: selective {:.2} µs | all-atomic {:.2} µs ({:.2}x worse) | serial-fixup {:.2} µs ({:.2}x worse)",
        geomean(&sel),
        geomean(&alla),
        geomean(&alla) / geomean(&sel),
        geomean(&ser),
        geomean(&ser) / geomean(&sel),
    );
    println!(
        "\nReading: with the load-balanced schedule held constant, the \
         selective policy wins — all-atomic pays synchronization on every \
         complete row, serial-fixup strangles the spanning rows."
    );
}
