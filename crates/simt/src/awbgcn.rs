//! Analytic model of the AWB-GCN hardware accelerator (Figure 2 reference
//! point).
//!
//! AWB-GCN [Geng et al., MICRO'20] implements 4096 multiply-accumulate
//! processing elements at 330 MHz on an FPGA, with a hardware auto-tuner
//! that detects evil rows at runtime and dedicates extra PEs to them. The
//! MergePath-SpMM paper does not re-simulate AWB-GCN; it quotes the
//! `A×(XW)` execution times published in AWB-GCN's own Figure 15 (4.3 µs
//! for Cora, 6.3 µs for Citeseer) and reasons about the rest. We mirror
//! that: a small published-value table for the quoted graphs plus an
//! analytic fallback that captures the two mechanisms the paper leans on —
//! a fixed fill/drain overhead that dominates small graphs (where AWB-GCN
//! wins) and an auto-tuner imbalance penalty that grows with the evil-row
//! ratio but saturates (why AWB-GCN loses ~6× on Nell).

use mpspmm_sparse::stats::DegreeStats;

/// AWB-GCN accelerator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AwbGcnConfig {
    /// Multiply-accumulate processing elements (4096 in the paper).
    pub pes: f64,
    /// Accelerator clock in GHz (0.33 in the paper).
    pub clock_ghz: f64,
    /// Fixed pipeline fill/drain + auto-tuner bring-up cycles.
    pub overhead_cycles: f64,
    /// Per-row handling cycles (row dispatch and accumulator turnaround),
    /// scaled by `rows × dim / PEs`.
    pub row_factor: f64,
    /// Evil-row ratio (`max_degree / avg_degree`) divisor feeding the
    /// imbalance penalty.
    pub imbalance_scale: f64,
    /// Cap on the imbalance penalty (the auto-tuner has "very limited
    /// success" on extreme power laws, but never *loses* work).
    pub imbalance_cap: f64,
}

impl AwbGcnConfig {
    /// The configuration evaluated in the paper (4096 PEs @ 330 MHz).
    pub fn paper() -> Self {
        Self {
            pes: 4096.0,
            clock_ghz: 0.33,
            overhead_cycles: 1300.0,
            row_factor: 75.0,
            imbalance_scale: 25.0,
            imbalance_cap: 30.0,
        }
    }
}

impl Default for AwbGcnConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Published `A×(XW)` execution times (µs) quoted by the MergePath-SpMM
/// paper from AWB-GCN's Figure 15.
const PUBLISHED_MICROS: [(&str, f64); 2] = [("Cora", 4.3), ("Citeseer", 6.3)];

/// Simulated AWB-GCN `A×(XW)` time in microseconds.
///
/// If `dataset_name` matches a published Figure 15 entry (and `dim`
/// matches the 16-wide hidden dimension those numbers use), the published
/// value is returned; otherwise the analytic model prices the kernel.
pub fn awbgcn_micros(
    dataset_name: &str,
    stats: &DegreeStats,
    dim: usize,
    cfg: &AwbGcnConfig,
) -> f64 {
    if dim == 16 {
        if let Some(&(_, micros)) = PUBLISHED_MICROS
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(dataset_name))
        {
            return micros;
        }
    }
    analytic_micros(stats, dim, cfg)
}

/// The analytic fallback: balanced MAC work inflated by the auto-tuner's
/// residual imbalance, plus fixed overhead.
pub fn analytic_micros(stats: &DegreeStats, dim: usize, cfg: &AwbGcnConfig) -> f64 {
    let macs = stats.nnz as f64 * dim as f64;
    let row_slots = stats.rows as f64 * dim as f64;
    let imbalance = 1.0 + (stats.evil_row_ratio() / cfg.imbalance_scale).min(cfg.imbalance_cap);
    let cycles =
        cfg.overhead_cycles + row_slots / cfg.pes * cfg.row_factor + macs / cfg.pes * imbalance;
    cycles / (cfg.clock_ghz * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rows: usize, nnz: usize, max: usize) -> DegreeStats {
        DegreeStats {
            rows,
            nnz,
            avg: nnz as f64 / rows as f64,
            max,
            min: 0,
            empty_rows: 0,
            gini: 0.5,
            p99: max,
        }
    }

    #[test]
    fn published_values_are_quoted() {
        let cora = stats(2_708, 10_556, 168);
        assert_eq!(
            awbgcn_micros("Cora", &cora, 16, &AwbGcnConfig::paper()),
            4.3
        );
        assert_eq!(
            awbgcn_micros(
                "citeseer",
                &stats(3_327, 9_228, 99),
                16,
                &AwbGcnConfig::paper()
            ),
            6.3
        );
    }

    #[test]
    fn published_values_only_apply_at_dim16() {
        let cora = stats(2_708, 10_556, 168);
        let cfg = AwbGcnConfig::paper();
        let at64 = awbgcn_micros("Cora", &cora, 64, &cfg);
        assert_ne!(at64, 4.3);
        assert!((at64 - analytic_micros(&cora, 64, &cfg)).abs() < 1e-12);
    }

    #[test]
    fn imbalance_penalty_grows_then_saturates() {
        let cfg = AwbGcnConfig::paper();
        let even = analytic_micros(&stats(10_000, 40_000, 8), 16, &cfg);
        let skewed = analytic_micros(&stats(10_000, 40_000, 2_000), 16, &cfg);
        let extreme = analytic_micros(&stats(10_000, 40_000, 9_999), 16, &cfg);
        assert!(skewed > even);
        assert!(extreme >= skewed);
        // Cap: the penalty cannot exceed (1 + cap)×.
        assert!(extreme / even < 1.0 + cfg.imbalance_cap + 0.5);
    }

    #[test]
    fn fixed_overhead_dominates_tiny_graphs() {
        let cfg = AwbGcnConfig::paper();
        let tiny = analytic_micros(&stats(100, 300, 10), 16, &cfg);
        // 1300 cycles at 330 MHz ≈ 3.9 µs floor.
        assert!(tiny > 3.9);
    }

    #[test]
    fn work_term_scales_with_nnz_and_dim() {
        let cfg = AwbGcnConfig::paper();
        let base = analytic_micros(&stats(10_000, 100_000, 50), 16, &cfg);
        let more_nnz = analytic_micros(&stats(10_000, 200_000, 50), 16, &cfg);
        let more_dim = analytic_micros(&stats(10_000, 100_000, 50), 64, &cfg);
        assert!(more_nnz > base);
        assert!(more_dim > base);
    }
}
