//! Graphite-like trace-driven multicore simulator for the MergePath-SpMM
//! reproduction (§IV-B / §V-D, Table I of the paper).
//!
//! The paper evaluates performance scaling on an MIT-Graphite-based model
//! of a 1024-core RISC-V multicore. This crate substitutes a deterministic
//! discrete-event model of the same machine organization: in-order cores
//! with 4-lane SIMD, private L1s, a shared distributed L2 with a
//! limited-4 MESI directory, a 2-D mesh with X-Y routing and
//! link-contention-only timing, and boundary memory controllers
//! (see DESIGN.md §1).
//!
//! SpMM kernels enter as [`mpspmm_core::KernelPlan`]s — the same
//! decompositions the CPU executors run — with one logical thread pinned
//! per core, and leave as [`McReport`]s with completion time and a
//! compute/memory breakdown (Figure 9).
//!
//! # Example
//!
//! ```
//! use mpspmm_core::{MergePathSpmm, SpmmKernel};
//! use mpspmm_graphs::{DatasetSpec, GraphClass};
//! use mpspmm_multicore::{simulate, McConfig};
//!
//! let a = DatasetSpec::custom("demo", GraphClass::PowerLaw, 1_000, 4_000, 80)
//!     .synthesize(3);
//! let cfg = McConfig::with_cores(64);
//! let plan = MergePathSpmm::with_threads(cfg.cores).plan(&a, 16);
//! let report = simulate(&plan, &a, 16, &cfg);
//! assert!(report.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod system;

pub use cache::SetAssocCache;
pub use config::{McConfig, LINE_BYTES};
pub use system::{simulate, McReport};
