//! Set-associative cache model with LRU replacement.

/// A set-associative cache tracking line *presence* only (tags, no data),
/// with true-LRU replacement inside each set.
///
/// Used for both the private L1s and the shared L2 slices. Addresses are
/// pre-divided into line numbers by the caller.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// `lines[set * ways + way]` = line number or `EMPTY`.
    lines: Vec<u64>,
    /// LRU stamps parallel to `lines`.
    stamps: Vec<u64>,
    tick: u64,
}

const EMPTY: u64 = u64::MAX;

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not produce at least one set.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let total_lines = capacity_bytes / line_bytes;
        assert!(ways > 0 && total_lines >= ways, "cache too small");
        let sets = (total_lines / ways).max(1);
        Self {
            sets,
            ways,
            lines: vec![EMPTY; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    /// Looks up `line`; on hit, refreshes LRU and returns `true`.
    pub fn probe(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        self.tick += 1;
        for way in 0..self.ways {
            let idx = set * self.ways + way;
            if self.lines[idx] == line {
                self.stamps[idx] = self.tick;
                return true;
            }
        }
        false
    }

    /// Inserts `line`, evicting the LRU way if needed. Returns the evicted
    /// line, if any.
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        self.tick += 1;
        let mut victim = set * self.ways;
        for way in 0..self.ways {
            let idx = set * self.ways + way;
            if self.lines[idx] == line {
                self.stamps[idx] = self.tick;
                return None;
            }
            if self.lines[idx] == EMPTY {
                self.lines[idx] = line;
                self.stamps[idx] = self.tick;
                return None;
            }
            if self.stamps[idx] < self.stamps[victim] {
                victim = idx;
            }
        }
        let evicted = self.lines[victim];
        self.lines[victim] = line;
        self.stamps[victim] = self.tick;
        Some(evicted)
    }

    /// Removes `line` if present (directory-initiated invalidation).
    /// Returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let idx = set * self.ways + way;
            if self.lines[idx] == line {
                self.lines[idx] = EMPTY;
                self.stamps[idx] = 0;
                return true;
            }
        }
        false
    }

    /// Number of sets (for tests).
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        // 4 KB, 4-way, 64 B lines → 64 lines, 16 sets (the paper's L1).
        let c = SetAssocCache::new(4096, 4, 64);
        assert_eq!(c.sets(), 16);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        assert!(!c.probe(42));
        c.insert(42);
        assert!(c.probe(42));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        // Four lines mapping to set 0 (multiples of 16 sets).
        let lines: Vec<u64> = (0..4).map(|i| i * 16).collect();
        for &l in &lines {
            c.insert(l);
        }
        // Touch all but the first to make line 0 the LRU victim.
        for &l in &lines[1..] {
            assert!(c.probe(l));
        }
        let evicted = c.insert(4 * 16);
        assert_eq!(evicted, Some(0));
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        c.insert(7);
        assert!(c.invalidate(7));
        assert!(!c.probe(7));
        assert!(!c.invalidate(7));
    }

    #[test]
    fn reinsert_is_not_eviction() {
        let mut c = SetAssocCache::new(4096, 4, 64);
        c.insert(5);
        assert_eq!(c.insert(5), None);
    }
}
