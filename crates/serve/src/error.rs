//! Typed serving errors.
//!
//! Every admission-control and backpressure decision surfaces as a
//! distinct [`ServeError`] variant so clients (and the load generator)
//! can tell *why* a request failed — a bounded queue rejecting is a
//! normal overload signal, an unknown graph is a caller bug, and the two
//! must never be conflated.

/// Why the serving layer refused or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No graph with this name is registered (or it has been retired).
    UnknownGraph(String),
    /// A [`Workload::Gcn`](crate::Workload::Gcn) request targeted a graph
    /// registered without a model.
    NoModel(String),
    /// The request's feature block does not fit the target graph (or its
    /// model's input width).
    BadShape {
        /// Node count the graph expects the block's rows to match.
        expected_rows: usize,
        /// Required column count, when the workload fixes one (a GCN
        /// model's input width); `None` for raw SpMM, where any width is
        /// accepted.
        expected_cols: Option<usize>,
        /// The offending block's `(rows, cols)`.
        got: (usize, usize),
    },
    /// Admission control: the tenant already has `limit` requests in
    /// flight — backpressure, try again later. The queue stays bounded
    /// instead of growing without limit under overload.
    QueueFull {
        /// Tenant whose bounded queue is full.
        tenant: String,
        /// The configured per-tenant in-flight limit.
        limit: usize,
    },
    /// The request's deadline passed before a batch could execute it; the
    /// work was shed instead of computed uselessly late.
    DeadlineExceeded,
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The server dropped the reply channel without answering (it was
    /// shut down while the request was in flight).
    Disconnected,
    /// The engine failed executing the batch — indicates a bug, since
    /// shapes are validated at admission.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownGraph(name) => write!(f, "no graph named {name:?} is registered"),
            ServeError::NoModel(name) => {
                write!(
                    f,
                    "graph {name:?} has no model; only raw SpMM requests are served"
                )
            }
            ServeError::BadShape {
                expected_rows,
                expected_cols,
                got,
            } => match expected_cols {
                Some(cols) => write!(
                    f,
                    "feature block is {}x{}, graph/model expects {expected_rows}x{cols}",
                    got.0, got.1
                ),
                None => write!(
                    f,
                    "feature block has {} rows, graph has {expected_rows} nodes",
                    got.0
                ),
            },
            ServeError::QueueFull { tenant, limit } => write!(
                f,
                "tenant {tenant:?} already has {limit} requests in flight (bounded queue)"
            ),
            ServeError::DeadlineExceeded => write!(f, "deadline passed before the batch executed"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Disconnected => write!(f, "server dropped the request without replying"),
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_actor() {
        let e = ServeError::QueueFull {
            tenant: "acme".into(),
            limit: 8,
        };
        assert!(e.to_string().contains("acme"));
        assert!(e.to_string().contains('8'));
        assert!(ServeError::UnknownGraph("g".into())
            .to_string()
            .contains("g"));
    }
}
