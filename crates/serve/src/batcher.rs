//! The batching scheduler: a dispatcher thread that coalesces queued
//! requests into dense-column batches.
//!
//! # Policy
//!
//! A batch is keyed by `(graph name, graph version, workload)` — only
//! requests that can share one engine run coalesce. The dispatcher takes
//! the oldest queued request, then *lingers* up to
//! [`ServeConfig::max_linger`](crate::ServeConfig::max_linger) sweeping
//! in every matching request until the batch holds
//! [`ServeConfig::max_batch_cols`](crate::ServeConfig::max_batch_cols)
//! dense columns. Non-matching requests stay queued in arrival order.
//!
//! # Backpressure degradation
//!
//! When the queue is deeper than
//! [`ServeConfig::pressure_threshold`](crate::ServeConfig::pressure_threshold),
//! the batch closes immediately (no linger — latency is already being
//! paid in the queue) and its column budget halves, trading peak
//! coalescing for smaller transient buffers and faster turn-around while
//! overloaded. Such batches are counted as `degraded_batches`.
//!
//! # Deadlines
//!
//! Deadlines are checked when the batch is about to execute: expired
//! requests are shed with
//! [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
//! rather than computed uselessly late, and they release their tenant's
//! queue slot like any other completion.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpspmm_core::ExecEngine;
use mpspmm_sparse::DenseMatrix;

use crate::error::ServeError;
use crate::registry::ServedGraph;
use crate::stats::{StatsCollector, TenantState};
use crate::{ServeConfig, Workload};

/// One admitted request parked in the queue.
pub(crate) struct Pending {
    pub graph: Arc<ServedGraph>,
    pub tenant: Arc<TenantState>,
    pub workload: Workload,
    pub features: Arc<DenseMatrix<f32>>,
    pub submitted: Instant,
    pub deadline: Option<Instant>,
    pub reply: std::sync::mpsc::Sender<Result<DenseMatrix<f32>, ServeError>>,
}

impl Pending {
    fn batch_key(&self) -> (usize, u64, Workload) {
        // The Arc pointer identifies the graph *version* (hot swap
        // allocates a new ServedGraph), so one batch never mixes
        // versions; name+version would be equivalent but costlier.
        (
            Arc::as_ptr(&self.graph) as usize,
            self.graph.version(),
            self.workload,
        )
    }
}

/// State shared between the submit path and the dispatcher thread.
pub(crate) struct Shared {
    pub config: ServeConfig,
    pub engine: Arc<ExecEngine>,
    pub queue: Mutex<VecDeque<Pending>>,
    pub ready: Condvar,
    pub shutdown: std::sync::atomic::AtomicBool,
    pub stats: StatsCollector,
}

/// Dispatcher body: drains the queue into batches until shutdown is
/// flagged *and* the queue is empty (already-admitted requests are
/// always answered).
pub(crate) fn dispatcher_loop(shared: &Shared) {
    loop {
        let first = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(p) = queue.pop_front() {
                    break p;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        let (batch, degraded) = collect_batch(shared, first);
        execute_batch(shared, batch, degraded);
    }
}

/// Grows a batch around `first` per the policy above. Returns the batch
/// (arrival order preserved) and whether the degraded policy applied.
fn collect_batch(shared: &Shared, first: Pending) -> (Vec<Pending>, bool) {
    let key = first.batch_key();
    let mut cols = first.features.cols();
    let mut batch = vec![first];
    let mut queue = shared.queue.lock().unwrap();
    let degraded = queue.len() > shared.config.pressure_threshold;
    let (max_cols, linger) = if degraded {
        ((shared.config.max_batch_cols / 2).max(1), Duration::ZERO)
    } else {
        (shared.config.max_batch_cols, shared.config.max_linger)
    };
    let close_at = Instant::now() + linger;
    loop {
        // Sweep every currently queued request that matches the key.
        let mut i = 0;
        while i < queue.len() && cols < max_cols {
            if queue[i].batch_key() == key {
                let p = queue.remove(i).expect("index checked in bounds");
                cols += p.features.cols();
                batch.push(p);
            } else {
                i += 1;
            }
        }
        if cols >= max_cols || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let now = Instant::now();
        if now >= close_at {
            break;
        }
        // Woken by an arrival (sweep it in next iteration) or by the
        // linger timeout (one final sweep, then the time check exits).
        let (q, _timeout) = shared.ready.wait_timeout(queue, close_at - now).unwrap();
        queue = q;
    }
    drop(queue);
    (batch, degraded)
}

/// Sheds expired members, runs the survivors as one engine run, and
/// answers every reply channel.
fn execute_batch(shared: &Shared, batch: Vec<Pending>, degraded: bool) {
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        if p.deadline.is_some_and(|d| now > d) {
            shared
                .stats
                .rejected_deadline
                .fetch_add(1, Ordering::Relaxed);
            p.tenant.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            p.tenant.in_flight.fetch_sub(1, Ordering::Relaxed);
            let _ = p.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(p);
        }
    }
    let Some(head) = live.first() else { return };
    let graph = Arc::clone(&head.graph);
    let workload = head.workload;
    let blocks: Vec<&DenseMatrix<f32>> = live.iter().map(|p| p.features.as_ref()).collect();
    let cols: usize = blocks.iter().map(|b| b.cols()).sum();
    let result = match workload {
        Workload::Spmm => {
            shared
                .engine
                .execute_prepared_batch(graph.prep(), graph.adjacency(), &blocks)
        }
        Workload::Gcn => {
            let model = graph
                .model()
                .expect("Gcn workload admitted only for graphs with a model");
            model.forward_batched_prepared(graph.adjacency(), graph.prep(), &blocks, &shared.engine)
        }
    };
    shared.stats.record_batch(live.len(), cols, degraded);
    match result {
        Ok(outs) => {
            debug_assert_eq!(outs.len(), live.len());
            for (p, out) in live.into_iter().zip(outs) {
                shared.stats.record_latency(p.submitted.elapsed());
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                p.tenant.completed.fetch_add(1, Ordering::Relaxed);
                p.tenant.in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = p.reply.send(Ok(out));
            }
        }
        Err(e) => {
            // Shapes were validated at admission, so this is a bug — but
            // a serving loop must answer, not unwind.
            for p in live {
                shared.stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                p.tenant.in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = p.reply.send(Err(ServeError::Internal(e.to_string())));
            }
        }
    }
}
