//! Vectorized, cache-blocked inner data path for the execution engine.
//!
//! PR 1's engine removed the *scheduling* overheads (thread spawn, global
//! atomics, re-planning); the inner loop it kept is a scalar-accumulator
//! kernel unrolled by 8/4. This module supplies the data-path side:
//!
//! * **Wide-lane streaming kernels** — const-generic register-accumulator
//!   blocks of 16 and 8 f32 lanes ([`LaneWidth`] picks the widest the CPU
//!   supports at runtime), each compiled to straight-line FMA-friendly
//!   code LLVM auto-vectorizes, with an 8/4/scalar tail cascade for
//!   dimension remainders.
//! * **Feature-dimension panel blocking** — for large `dim` a segment is
//!   swept in L1-resident column panels ([`crate::tuning::panel_cols`]),
//!   so the gathered rows of `B` are touched one cache-friendly panel at
//!   a time instead of streaming full rows past the accumulators.
//! * **Degree-adaptive dispatch** — segments with at most
//!   [`crate::tuning::GATHER_MAX_NNZ`] non-zeros (the short-row regime
//!   that dominates power-law graphs) skip the column-blocked machinery
//!   and run a gather microkernel that initializes the destination once
//!   and axpy-accumulates row by row; long segments take the streaming
//!   panel kernel. The engine records the split in
//!   [`crate::EngineStats`].
//! * **Packed indices** — every kernel is generic over the column-index
//!   type, so it runs on the `u32` SoA packing
//!   ([`mpspmm_sparse::PackedCsr`]-style, built by
//!   [`crate::PreparedPlan::pack_indices`]) when available and on the
//!   plain `usize` CSR arrays otherwise.
//!
//! # Why the scalar kernel stays the oracle
//!
//! Every kernel here gives each output column its **own** accumulator and
//! adds that column's products in non-zero order. Lane width, panel
//! boundaries, and the gather-vs-stream choice only change *which columns
//! are grouped together*, never the order of additions within a column —
//! so all paths produce exactly equal values (f32 `==`, zero tolerance)
//! to [`accumulate_segment_scalar`] (and hence to
//! [`crate::executor::execute_sequential`]). The streaming kernels fold
//! in the oracle's leading `0.0` and are bit-identical; the gather
//! microkernel fuses the products directly, which can differ from the
//! oracle only in the **sign of a zero** result (`-0.0` vs `+0.0`, a
//! 0-ulp difference) — the property tests assert exact equality, not a
//! tolerance, and pass because `-0.0 == 0.0`. Building with the
//! `force-scalar` feature pins [`DataPath::Auto`] to the scalar path,
//! keeping a known-good oracle build available at all times.
//!
//! # Tuning knobs
//!
//! Two environment variables, read **once per process** at the first
//! path resolution (never in the segment loop or per engine run), exist
//! for ablation: `MPSPMM_GATHER_MAX` overrides the gather threshold
//! ([`GATHER_MAX_NNZ`]; `0` disables the gather kernel entirely) and
//! `MPSPMM_NO_PREFETCH` disables the software prefetch. Like
//! `MPSPMM_WORKERS`, changing them after the first engine run has no
//! effect — a serving process resolves its configuration at startup.

use mpspmm_sparse::{CsrMatrix, DenseMatrix};

use crate::plan::Segment;
use crate::tuning::{panel_cols, CacheModel, GATHER_MAX_NNZ, GEMM_MR};

/// Which inner data path an [`crate::ExecEngine`] drives its segments
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPath {
    /// Pick automatically: the vectorized path, unless the crate is built
    /// with the `force-scalar` feature (then the scalar oracle).
    #[default]
    Auto,
    /// Scalar per-column accumulation — the correctness oracle.
    Scalar,
    /// The PR-1 register-tiled kernel (8/4-unrolled, `usize` indices, no
    /// panel blocking). Kept selectable so benchmarks can regenerate the
    /// PR-1 baseline on the same binary.
    Tiled,
    /// Wide-lane streaming kernels with panel blocking, packed-index
    /// support, and degree-adaptive gather dispatch.
    Vector,
}

/// Accumulator width of the streaming kernel, selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneWidth {
    /// 8 f32 accumulators per block (two SSE vectors, one AVX vector).
    W8,
    /// 16 f32 accumulators per block (two AVX vectors, one AVX-512
    /// vector).
    W16,
}

impl LaneWidth {
    /// Picks the widest block the running CPU vectorizes profitably:
    /// 16 lanes with AVX2/AVX-512, 8 otherwise (and on non-x86_64).
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") || is_x86_feature_detected!("avx2") {
                return LaneWidth::W16;
            }
        }
        LaneWidth::W8
    }

    /// Number of f32 lanes per block.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W8 => 8,
            LaneWidth::W16 => 16,
        }
    }
}

/// Widest x86 vector extension the GEMM microkernel may be *compiled*
/// for, proven present at runtime. [`LaneWidth`] only sizes accumulator
/// blocks for the baseline autovectorizer; this goes further and selects
/// a `#[target_feature]` clone of the same kernel body, so the identical
/// scalar arithmetic (separate multiply and add, `k` ascending — never
/// FMA-contracted, which would change rounding) is emitted with 256- or
/// 512-bit instructions. Results stay bit-equal across all variants
/// because every vector lane is an independent output column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WideIsa {
    /// Baseline codegen (also all non-x86_64 targets).
    Portable,
    /// AVX2 proven by `is_x86_feature_detected!`.
    Avx2,
    /// AVX-512F proven by `is_x86_feature_detected!`.
    Avx512f,
}

impl WideIsa {
    /// Detects the widest ISA clone the running CPU supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return WideIsa::Avx512f;
            }
            if is_x86_feature_detected!("avx2") {
                return WideIsa::Avx2;
            }
        }
        WideIsa::Portable
    }
}

/// Concrete kernel family after [`DataPath`] resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PathKind {
    Scalar,
    Tiled,
    Vector,
}

/// A [`DataPath`] resolved against a dense dimension: the kernel family,
/// the lane width, the column panel, and the gather threshold, fixed once
/// per engine run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResolvedPath {
    pub kind: PathKind,
    pub lanes: LaneWidth,
    pub wide_isa: WideIsa,
    pub panel: usize,
    pub gather_max: usize,
    pub prefetch: bool,
}

impl DataPath {
    /// Resolves the path for one execution over a `dim`-column dense
    /// operand.
    pub(crate) fn resolve(self, dim: usize) -> ResolvedPath {
        let kind = match self {
            DataPath::Auto => {
                if cfg!(feature = "force-scalar") {
                    PathKind::Scalar
                } else {
                    PathKind::Vector
                }
            }
            DataPath::Scalar => PathKind::Scalar,
            DataPath::Tiled => PathKind::Tiled,
            DataPath::Vector => PathKind::Vector,
        };
        let lanes = LaneWidth::detect();
        ResolvedPath {
            kind,
            lanes,
            wide_isa: WideIsa::detect(),
            panel: panel_cols(dim, lanes.lanes(), &CacheModel::default()),
            gather_max: env_gather_max(),
            prefetch: env_prefetch(),
        }
    }
}

/// `MPSPMM_GATHER_MAX` override, resolved once per process (a request
/// server resolves hundreds of thousands of paths; the environment cannot
/// change under a running process anyway).
fn env_gather_max() -> usize {
    static GATHER_MAX: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *GATHER_MAX.get_or_init(|| {
        std::env::var("MPSPMM_GATHER_MAX")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(GATHER_MAX_NNZ)
    })
}

/// `MPSPMM_NO_PREFETCH` kill switch, resolved once per process.
fn env_prefetch() -> bool {
    static PREFETCH: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PREFETCH.get_or_init(|| std::env::var_os("MPSPMM_NO_PREFETCH").is_none())
}

/// Column-index view the kernels are generic over: plain CSR `usize`
/// indices or the packed `u32` form.
pub(crate) trait ColIdx: Copy {
    fn to_usize(self) -> usize;
}

impl ColIdx for usize {
    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }
}

impl ColIdx for u32 {
    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

/// Scalar oracle: one column at a time, additions in non-zero order.
pub(crate) fn accumulate_segment_scalar<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    dst: &mut [f32],
) {
    for (d, slot) in dst.iter_mut().enumerate() {
        let mut s = 0.0f32;
        for k in seg.nz_start..seg.nz_end {
            s += vals[k] * b.row(cols[k].to_usize())[d];
        }
        *slot = s;
    }
}

/// The PR-1 register-tiled kernel, re-expressed over the shared wide-lane
/// blocks: unrolled blocks of 8 and 4 plus a scalar tail, full-width (no
/// panel loop), `usize` indices. Arithmetic per column is unchanged from
/// PR 1 — same block cascade, same accumulation order.
#[inline]
pub(crate) fn accumulate_segment_tiled(
    seg: &Segment,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dst: &mut [f32],
) {
    let cols = a.col_indices();
    let vals = a.values();
    let dim = dst.len();
    let mut d = 0;
    while d + 8 <= dim {
        stream_block::<8, _>(seg, cols, vals, b, d, dst);
        d += 8;
    }
    if d + 4 <= dim {
        stream_block::<4, _>(seg, cols, vals, b, d, dst);
        d += 4;
    }
    tail_columns(seg, cols, vals, b, d..dim, dst);
}

/// One `W`-column register-accumulator block: `W` f32 accumulators live
/// across the whole segment sweep, loads of `B` go through a fixed-size
/// `[f32; W]` view so the inner loop is bounds-check-free straight-line
/// code LLVM vectorizes.
#[inline]
fn stream_block<const W: usize, I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    d: usize,
    dst: &mut [f32],
) {
    let mut acc = [0.0f32; W];
    for k in seg.nz_start..seg.nz_end {
        let v = vals[k];
        let row = b.row(cols[k].to_usize());
        let blk: &[f32; W] = row[d..d + W].try_into().expect("block inside dense row");
        for (a, &x) in acc.iter_mut().zip(blk) {
            *a += v * x;
        }
    }
    dst[d..d + W].copy_from_slice(&acc);
}

/// Scalar remainder columns of a panel.
#[inline]
fn tail_columns<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    range: std::ops::Range<usize>,
    dst: &mut [f32],
) {
    for d in range {
        let mut s = 0.0f32;
        for k in seg.nz_start..seg.nz_end {
            s += vals[k] * b.row(cols[k].to_usize())[d];
        }
        dst[d] = s;
    }
}

/// Gather microkernel for short segments: fuse all (at most four) gathered
/// rows into a single register-accumulating pass over the destination —
/// one `dst` write per column, no per-block loop restarts, no staging
/// array. The column-blocked machinery would cost more than the segment
/// itself.
///
/// Per column the products are summed left-to-right in non-zero order,
/// the oracle's order; the only representational difference is that the
/// oracle folds in a leading `0.0` (which can flip a `-0.0` product to
/// `+0.0`), so results are equal under f32 `==` and may differ only in
/// the sign of zero.
pub(crate) fn gather_segment<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    dst: &mut [f32],
) {
    let dim = dst.len();
    let k = seg.nz_start;
    let row = |i: usize| &b.row(cols[k + i].to_usize())[..dim];
    match seg.len() {
        0 => dst.fill(0.0),
        1 => {
            let v0 = vals[k];
            for (slot, &x0) in dst.iter_mut().zip(row(0)) {
                *slot = v0 * x0;
            }
        }
        2 => {
            let (v0, v1) = (vals[k], vals[k + 1]);
            for ((slot, &x0), &x1) in dst.iter_mut().zip(row(0)).zip(row(1)) {
                *slot = v0 * x0 + v1 * x1;
            }
        }
        3 => {
            let (v0, v1, v2) = (vals[k], vals[k + 1], vals[k + 2]);
            for (((slot, &x0), &x1), &x2) in dst.iter_mut().zip(row(0)).zip(row(1)).zip(row(2)) {
                *slot = v0 * x0 + v1 * x1 + v2 * x2;
            }
        }
        4 => {
            let (v0, v1, v2, v3) = (vals[k], vals[k + 1], vals[k + 2], vals[k + 3]);
            for ((((slot, &x0), &x1), &x2), &x3) in dst
                .iter_mut()
                .zip(row(0))
                .zip(row(1))
                .zip(row(2))
                .zip(row(3))
            {
                *slot = v0 * x0 + v1 * x1 + v2 * x2 + v3 * x3;
            }
        }
        // Above four rows (a raised `MPSPMM_GATHER_MAX`): initialize from
        // the first row's product, then axpy the rest.
        _ => {
            let v0 = vals[k];
            for (slot, &x0) in dst.iter_mut().zip(row(0)) {
                *slot = v0 * x0;
            }
            for j in 1..seg.len() {
                let v = vals[k + j];
                for (slot, &x) in dst.iter_mut().zip(row(j)) {
                    *slot += v * x;
                }
            }
        }
    }
}

/// Streaming panel kernel for long segments: sweeps the dense dimension
/// in `rp.panel`-column panels; within a panel, wide-lane blocks at
/// `rp.lanes`, then an 8/4/scalar cascade for the remainder.
pub(crate) fn stream_segment<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    dst: &mut [f32],
    rp: &ResolvedPath,
) {
    let dim = dst.len();
    let panel = rp.panel.max(1);
    let mut p0 = 0;
    while p0 < dim {
        let p1 = (p0 + panel).min(dim);
        let mut d = p0;
        if rp.lanes == LaneWidth::W16 {
            while d + 16 <= p1 {
                stream_block::<16, _>(seg, cols, vals, b, d, dst);
                d += 16;
            }
        }
        while d + 8 <= p1 {
            stream_block::<8, _>(seg, cols, vals, b, d, dst);
            d += 8;
        }
        if d + 4 <= p1 {
            stream_block::<4, _>(seg, cols, vals, b, d, dst);
            d += 4;
        }
        tail_columns(seg, cols, vals, b, d..p1, dst);
        p0 = p1;
    }
}

/// The vectorized path's degree-adaptive dispatch: gather microkernel at
/// or below the threshold, streaming panel kernel above it.
#[inline]
pub(crate) fn vector_segment<I: ColIdx>(
    seg: &Segment,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    dst: &mut [f32],
    rp: &ResolvedPath,
) {
    if seg.len() <= rp.gather_max {
        gather_segment(seg, cols, vals, b, dst);
    } else {
        stream_segment(seg, cols, vals, b, dst, rp);
    }
}

/// Accumulates one segment into `dst` (length = dense dimension),
/// overwriting it, through the resolved data path. `cols32` is the packed
/// `u32` index array when the prepared plan carries one.
pub(crate) fn accumulate_segment_dispatch(
    rp: &ResolvedPath,
    seg: &Segment,
    a: &CsrMatrix<f32>,
    cols32: Option<&[u32]>,
    b: &DenseMatrix<f32>,
    dst: &mut [f32],
) {
    match rp.kind {
        PathKind::Scalar => {
            accumulate_segment_scalar(seg, a.col_indices(), a.values(), b, dst);
        }
        PathKind::Tiled => accumulate_segment_tiled(seg, a, b, dst),
        PathKind::Vector => match cols32 {
            Some(cols) => vector_segment(seg, cols, a.values(), b, dst, rp),
            None => vector_segment(seg, a.col_indices(), a.values(), b, dst, rp),
        },
    }
}

/// Dense GEMM band kernel for [`crate::ExecEngine::gemm`]: computes the
/// `dst.len() / b.cols()` output rows starting at `row_start` of
/// `C = A · B` into the zeroed row-major slice `dst`. Returns the number
/// of column panels executed (the [`crate::EngineStats::gemm_panels`]
/// unit; the scalar path counts one panel per band).
///
/// The blocked path register-tiles [`GEMM_MR`] `A` rows against the same
/// wide-lane cascade as the streaming SpMM kernel (16-lane blocks when
/// [`LaneWidth::W16`], then 8/4/scalar tails), sweeping the output width
/// in [`panel_cols`]-sized panels. `k` is streamed innermost, ascending
/// and unblocked, so every output element accumulates its products in
/// exactly the naive `ikj` loop's order — results are bit-equal to that
/// loop up to the sign of zeros (this kernel has **no** per-element
/// `a == 0.0` skip; skipping is worthwhile only for sparse feature
/// inputs, which the GCN layer-0 path keeps on the naive loop).
pub(crate) fn gemm_band(
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
    row_start: usize,
    rp: &ResolvedPath,
    dst: &mut [f32],
) -> u64 {
    let n = b.cols();
    if n == 0 || dst.is_empty() {
        return 0;
    }
    if rp.kind == PathKind::Scalar {
        for (r, crow) in dst.chunks_exact_mut(n).enumerate() {
            for (p, &av) in a.row(row_start + r).iter().enumerate() {
                for (c, &bv) in crow.iter_mut().zip(b.row(p)) {
                    *c += av * bv;
                }
            }
        }
        return 1;
    }
    let mut panels = 0u64;
    let mut r = 0usize;
    let mut quads = dst.chunks_exact_mut(GEMM_MR * n);
    for quad in quads.by_ref() {
        let arows: [&[f32]; GEMM_MR] = std::array::from_fn(|i| a.row(row_start + r + i));
        let mut rows = quad.chunks_exact_mut(n);
        let mut crows: [&mut [f32]; GEMM_MR] =
            std::array::from_fn(|_| rows.next().expect("quad holds GEMM_MR rows"));
        panels += gemm_rows(arows, b, n, rp, &mut crows);
        r += GEMM_MR;
    }
    for crow in quads.into_remainder().chunks_exact_mut(n) {
        panels += gemm_rows([a.row(row_start + r)], b, n, rp, &mut [crow]);
        r += 1;
    }
    panels
}

/// Sweeps the full output width for one register tile of `MR` rows
/// through the widest kernel clone the CPU proved it supports (see
/// [`WideIsa`]) — every clone runs the same [`gemm_rows_body`], so the
/// choice affects instruction encoding only, never results.
#[inline]
fn gemm_rows<const MR: usize>(
    arows: [&[f32]; MR],
    b: &DenseMatrix<f32>,
    n: usize,
    rp: &ResolvedPath,
    crows: &mut [&mut [f32]; MR],
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if rp.wide_isa != WideIsa::Portable {
        return wide::gemm_rows_wide(arows, b, n, rp, crows);
    }
    gemm_rows_body(arows, b, n, rp, crows)
}

/// The `#[target_feature]` clones of [`gemm_rows_body`]. This is one of
/// the three modules allowed out of the crate's `deny(unsafe_code)`
/// (with [`crate::pool`] and [`crate::steal`]): calling a
/// `#[target_feature]` function is `unsafe` because executing it on a
/// CPU without the feature is undefined behavior — here each call is
/// gated on the matching `is_x86_feature_detected!` proof captured in
/// [`ResolvedPath::wide_isa`] at path-resolution time.
#[cfg(target_arch = "x86_64")]
mod wide {
    #![allow(unsafe_code)]

    use super::{gemm_rows_body, DenseMatrix, ResolvedPath, WideIsa};

    /// Dispatches one register tile to the AVX-512F or AVX2 clone.
    #[inline]
    pub(super) fn gemm_rows_wide<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        n: usize,
        rp: &ResolvedPath,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        match rp.wide_isa {
            // SAFETY: `wide_isa` is only ever set to a non-`Portable`
            // variant by `WideIsa::detect` after the corresponding
            // `is_x86_feature_detected!` check succeeded on this CPU.
            WideIsa::Avx512f => unsafe { gemm_rows_avx512f(arows, b, n, rp, crows) },
            WideIsa::Avx2 => unsafe { gemm_rows_avx2(arows, b, n, rp, crows) },
            WideIsa::Portable => gemm_rows_body(arows, b, n, rp, crows),
        }
    }

    /// [`gemm_rows_body`] compiled with 256-bit codegen. No FMA: the
    /// body's separate multiply and add must stay separate instructions
    /// for bit-equality with the portable clone.
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_rows_avx2<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        n: usize,
        rp: &ResolvedPath,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        gemm_rows_body(arows, b, n, rp, crows)
    }

    /// [`gemm_rows_body`] compiled with 512-bit codegen (a W16 block is
    /// exactly one `zmm` register).
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_rows_avx512f<const MR: usize>(
        arows: [&[f32]; MR],
        b: &DenseMatrix<f32>,
        n: usize,
        rp: &ResolvedPath,
        crows: &mut [&mut [f32]; MR],
    ) -> u64 {
        gemm_rows_body(arows, b, n, rp, crows)
    }
}

/// The actual panel sweep for one register tile of `MR` rows: panel loop
/// outside, wide-lane cascade inside — the GEMM analogue of
/// [`stream_segment`]'s panel sweep. `inline(always)` so each
/// `#[target_feature]` clone in [`wide`] absorbs the whole body (and the
/// microkernels below) under its own codegen features.
#[inline(always)]
fn gemm_rows_body<const MR: usize>(
    arows: [&[f32]; MR],
    b: &DenseMatrix<f32>,
    n: usize,
    rp: &ResolvedPath,
    crows: &mut [&mut [f32]; MR],
) -> u64 {
    let panel = rp.panel.max(1);
    let mut panels = 0u64;
    let mut p0 = 0;
    while p0 < n {
        let p1 = (p0 + panel).min(n);
        let mut d = p0;
        if rp.lanes == LaneWidth::W16 {
            while d + 16 <= p1 {
                gemm_micro::<MR, 16>(arows, b, d, crows);
                d += 16;
            }
        }
        while d + 8 <= p1 {
            gemm_micro::<MR, 8>(arows, b, d, crows);
            d += 8;
        }
        if d + 4 <= p1 {
            gemm_micro::<MR, 4>(arows, b, d, crows);
            d += 4;
        }
        gemm_tail(arows, b, d..p1, crows);
        p0 = p1;
        panels += 1;
    }
    panels
}

/// `MR × W` register microkernel: `MR * W` f32 accumulators live across
/// the whole `k` sweep, each loaded `B` block feeds all `MR` rows, and
/// the (zeroed) destination is written once per tile. No zero-skip
/// branch — the dense inner loop stays straight-line mul/add code
/// (separate instructions, so rounding matches the naive oracle even
/// under the FMA-capable [`wide`] clones).
#[inline(always)]
fn gemm_micro<const MR: usize, const W: usize>(
    arows: [&[f32]; MR],
    b: &DenseMatrix<f32>,
    d: usize,
    crows: &mut [&mut [f32]; MR],
) {
    let mut acc = [[0.0f32; W]; MR];
    let k = arows[0].len();
    for p in 0..k {
        let row = b.row(p);
        let blk: &[f32; W] = row[d..d + W].try_into().expect("block inside dense row");
        for (accr, arow) in acc.iter_mut().zip(&arows) {
            let av = arow[p];
            for (s, &bv) in accr.iter_mut().zip(blk) {
                *s += av * bv;
            }
        }
    }
    for (accr, crow) in acc.iter().zip(crows.iter_mut()) {
        crow[d..d + W].copy_from_slice(accr);
    }
}

/// Scalar remainder columns of a GEMM panel, still `k`-ascending.
#[inline(always)]
fn gemm_tail<const MR: usize>(
    arows: [&[f32]; MR],
    b: &DenseMatrix<f32>,
    range: std::ops::Range<usize>,
    crows: &mut [&mut [f32]; MR],
) {
    for d in range {
        for (arow, crow) in arows.iter().zip(crows.iter_mut()) {
            let mut s = 0.0f32;
            for (p, &av) in arow.iter().enumerate() {
                s += av * b.row(p)[d];
            }
            crow[d] = s;
        }
    }
}

/// How many of the next segment's gathered rows to touch ahead of time.
const PREFETCH_ROWS: usize = 4;

/// Software prefetch of the next segment's first gathered `B` rows: a
/// handful of `black_box`-forced head loads pull the lines toward L1
/// while the current segment still has arithmetic in flight. `black_box`
/// keeps the loads from being optimized away without any `unsafe`
/// prefetch intrinsic (this crate denies `unsafe_code`).
pub(crate) fn prefetch_segment_rows(
    rp: &ResolvedPath,
    next: Option<&Segment>,
    a: &CsrMatrix<f32>,
    cols32: Option<&[u32]>,
    b: &DenseMatrix<f32>,
) {
    if rp.kind != PathKind::Vector || !rp.prefetch {
        return;
    }
    // Only prefetch ahead of *streaming* segments: a gather segment
    // finishes in fewer cycles than the prefetch distance, so the head
    // loads would cost more than the misses they hide.
    let Some(seg) = next.filter(|s| s.len() > rp.gather_max) else {
        return;
    };
    let end = (seg.nz_start + PREFETCH_ROWS).min(seg.nz_end);
    match cols32 {
        Some(cols) => {
            for &c in &cols[seg.nz_start..end] {
                std::hint::black_box(b.row(c.to_usize()).first().copied());
            }
        }
        None => {
            for &c in &a.col_indices()[seg.nz_start..end] {
                std::hint::black_box(b.row(c).first().copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Flush;
    use crate::spmm::test_support::{random_dense, random_matrix};

    fn seg(nz_start: usize, nz_end: usize) -> Segment {
        Segment {
            row: 0,
            nz_start,
            nz_end,
            flush: Flush::Regular,
        }
    }

    fn scalar_reference(
        s: &Segment,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        dim: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; dim];
        accumulate_segment_scalar(s, a.col_indices(), a.values(), b, &mut out);
        out
    }

    fn resolved(kind: PathKind, lanes: LaneWidth, panel: usize) -> ResolvedPath {
        ResolvedPath {
            kind,
            lanes,
            wide_isa: WideIsa::detect(),
            panel,
            gather_max: GATHER_MAX_NNZ,
            prefetch: true,
        }
    }

    /// Every kernel variant, lane width, panel size, and index type must be
    /// bit-identical to the scalar oracle on all dims 1..=67 — including
    /// empty segments and single-nnz rows.
    #[test]
    fn all_kernels_bit_match_scalar_oracle_dims_1_to_67() {
        let a = random_matrix(64, 64, 300, 21);
        let cols32: Vec<u32> = a.col_indices().iter().map(|&c| c as u32).collect();
        let row_end = a.row_ptr()[1];
        let segments = [
            seg(0, row_end), // the evil long row
            seg(0, 0),       // empty
            seg(2, 3),       // single non-zero
            seg(1, row_end - 1),
        ];
        for dim in 1..=67usize {
            let b = random_dense(64, dim, 22);
            for s in &segments {
                let want = scalar_reference(s, &a, &b, dim);
                let mut got = vec![f32::NAN; dim];
                accumulate_segment_tiled(s, &a, &b, &mut got);
                assert_eq!(got, want, "tiled dim={dim} seg={s:?}");
                for lanes in [LaneWidth::W8, LaneWidth::W16] {
                    for panel in [8usize, 16, 32, 1024] {
                        let rp = resolved(PathKind::Vector, lanes, panel);
                        got.fill(f32::NAN);
                        vector_segment(s, a.col_indices(), a.values(), &b, &mut got, &rp);
                        assert_eq!(
                            got, want,
                            "vector/usize dim={dim} lanes={lanes:?} panel={panel} seg={s:?}"
                        );
                        got.fill(f32::NAN);
                        vector_segment(s, &cols32, a.values(), &b, &mut got, &rp);
                        assert_eq!(
                            got, want,
                            "vector/u32 dim={dim} lanes={lanes:?} panel={panel} seg={s:?}"
                        );
                    }
                }
                got.fill(f32::NAN);
                gather_segment(s, a.col_indices(), a.values(), &b, &mut got);
                assert_eq!(got, want, "gather dim={dim} seg={s:?}");
                got.fill(f32::NAN);
                let rp = resolved(PathKind::Vector, LaneWidth::W16, 16);
                stream_segment(s, a.col_indices(), a.values(), &b, &mut got, &rp);
                assert_eq!(got, want, "stream dim={dim} seg={s:?}");
            }
        }
    }

    #[test]
    fn dispatch_routes_short_segments_to_gather() {
        // The dispatch itself is value-transparent; this pins the routing
        // threshold semantics: len <= GATHER_MAX_NNZ gathers.
        let a = random_matrix(32, 32, 150, 5);
        let b = random_dense(32, 24, 6);
        let rp = DataPath::Vector.resolve(24);
        assert_eq!(rp.gather_max, GATHER_MAX_NNZ);
        let short = seg(0, GATHER_MAX_NNZ);
        let long = seg(0, GATHER_MAX_NNZ + 1);
        for s in [&short, &long] {
            let want = scalar_reference(s, &a, &b, 24);
            let mut got = vec![f32::NAN; 24];
            vector_segment(s, a.col_indices(), a.values(), &b, &mut got, &rp);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn resolve_honors_explicit_paths_and_panel_model() {
        assert_eq!(DataPath::Scalar.resolve(32).kind, PathKind::Scalar);
        assert_eq!(DataPath::Tiled.resolve(32).kind, PathKind::Tiled);
        assert_eq!(DataPath::Vector.resolve(32).kind, PathKind::Vector);
        let auto = DataPath::Auto.resolve(32).kind;
        if cfg!(feature = "force-scalar") {
            assert_eq!(auto, PathKind::Scalar);
        } else {
            assert_eq!(auto, PathKind::Vector);
        }
        let rp = DataPath::Vector.resolve(4096);
        assert_eq!(rp.panel % rp.lanes.lanes(), 0);
        assert!(rp.panel <= 4096 + rp.lanes.lanes());
    }

    #[test]
    fn lane_detection_is_stable_and_wide_enough() {
        let w = LaneWidth::detect();
        assert_eq!(w, LaneWidth::detect());
        assert!(w.lanes() >= 8);
    }

    #[test]
    fn prefetch_is_a_no_op_for_values() {
        // Prefetching must not write anything; just exercise both index
        // paths for coverage.
        let a = random_matrix(16, 16, 40, 9);
        let cols32: Vec<u32> = a.col_indices().iter().map(|&c| c as u32).collect();
        let b = random_dense(16, 8, 10);
        let rp = DataPath::Vector.resolve(8);
        let s = seg(0, a.nnz().min(6));
        prefetch_segment_rows(&rp, Some(&s), &a, None, &b);
        prefetch_segment_rows(&rp, Some(&s), &a, Some(&cols32), &b);
        prefetch_segment_rows(&rp, None, &a, None, &b);
        let tiled = DataPath::Tiled.resolve(8);
        prefetch_segment_rows(&tiled, Some(&s), &a, None, &b);
    }
}
