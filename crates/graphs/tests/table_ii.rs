//! Verifies that the synthetic Table II datasets honour their specs.

use mpspmm_graphs::{table_ii, DatasetSpec, GraphClass};
use mpspmm_sparse::stats::DegreeStats;

fn verify(spec: &DatasetSpec, seed: u64) {
    let a = spec.synthesize(seed);
    let st = DegreeStats::compute(&a);
    assert_eq!(st.rows, spec.nodes, "{}: node count", spec.name);
    assert_eq!(st.nnz, spec.nnz, "{}: nnz", spec.name);
    assert_eq!(st.max, spec.max_degree, "{}: max degree", spec.name);
    assert!(
        (st.avg - spec.avg_degree()).abs() < 1e-9,
        "{}: avg degree",
        spec.name
    );
    match spec.class {
        GraphClass::PowerLaw => {
            // Power-law graphs must be visibly skewed whenever the spec
            // allows it (max ≫ avg).
            if spec.max_degree as f64 > 20.0 * spec.avg_degree() {
                assert!(
                    st.gini > 0.25,
                    "{}: gini {} too even for power law",
                    spec.name,
                    st.gini
                );
            }
        }
        GraphClass::Structured => {
            assert!(
                st.gini < 0.25,
                "{}: gini {} too skewed for structured",
                spec.name,
                st.gini
            );
        }
    }
}

/// Scaled-down versions of every Table II dataset synthesize correctly.
/// (Full-size synthesis is exercised by the release-mode harnesses and the
/// `full_size_table_ii` ignored test below.)
#[test]
fn scaled_table_ii_specs_are_honoured() {
    for spec in table_ii() {
        let small = spec.scaled_down(32);
        verify(&small, 0xC0FFEE);
    }
}

/// The four Figure 2 graphs at full size (small enough for debug builds).
#[test]
fn figure2_graphs_full_size() {
    for name in ["Cora", "Citeseer", "Pubmed", "Nell"] {
        let spec = mpspmm_graphs::find_dataset(name).unwrap();
        verify(spec, 7);
    }
}

/// Full-size synthesis of all 23 datasets. Run with
/// `cargo test -p mpspmm-graphs --release -- --ignored`.
#[test]
#[ignore = "full-size synthesis of 23 graphs is release-mode work"]
fn full_size_table_ii() {
    for spec in table_ii() {
        verify(spec, 7);
    }
}
