//! Fast-path CPU execution engine for [`KernelPlan`]s.
//!
//! [`crate::executor::execute_parallel`] is kept as the straightforward
//! baseline: it spawns scoped threads per call and routes *every* output
//! element through an `AtomicU32` cell — including rows the plan proves
//! are exclusively owned — then pays two extra O(rows·dim) passes to
//! initialize and convert that atomic buffer. [`ExecEngine`] removes all
//! of that overhead while preserving the executors' semantics:
//!
//! * **Persistent workers** ([`crate::pool`]): logical threads are
//!   partitioned statically over long-lived pool workers, so repeated
//!   SpMM calls (a GNN forward pass is many of them) stop paying thread
//!   spawn/join.
//! * **Non-atomic regular stores**: rows written by exactly one
//!   `Flush::Regular` segment and touched by no `Flush::Atomic` segment
//!   are classified `Direct` and handed to their owning worker as plain
//!   disjoint `&mut [f32]` slices of the output buffer. Safety is a
//!   borrow-checker fact, not an `unsafe` claim: each row slice is moved
//!   into exactly one worker's closure. The (few, per the paper's
//!   central argument) rows with shared updates accumulate into compact
//!   per-worker private strips folded serially after the join — the
//!   static path performs no atomic operations at all; `Flush::Carry`
//!   segments stay thread-local and are added serially after the join,
//!   exactly like the baseline.
//! * **Vectorized, cache-blocked data path** ([`crate::datapath`]): each
//!   segment runs through a [`DataPath`]-selected inner kernel — by
//!   default the wide-lane streaming kernels (16/8 f32 register
//!   accumulators, runtime lane detection, L1-sized column panels) with
//!   degree-adaptive dispatch: short segments take a gather microkernel,
//!   long segments the streaming panel kernel, and the split is recorded
//!   in [`EngineStats`]. Prepared plans carry a 64-byte-aligned `u32`
//!   packing of the column indices ([`PreparedPlan::pack_indices`]) that
//!   halves index bandwidth in the hot loop; values are always read live
//!   from the matrix so value-only re-weighting never goes stale. The
//!   PR-1 register-tiled kernel and a scalar oracle stay selectable
//!   ([`DataPath::Tiled`] / [`DataPath::Scalar`]).
//! * **Plan caching** ([`ExecEngine::spmm_cached`]): planning — the
//!   merge-path binary searches plus row classification — is keyed by
//!   (kernel name, kernel configuration fingerprint, graph epoch, shape,
//!   dense dimension) and reused across calls until the graph mutates.
//!   Hit/miss counters are exposed via [`EngineStats`].
//! * **Work stealing over chunk descriptors** ([`crate::steal`]): under
//!   [`SchedPolicy::Stealing`] the plan is pre-split into several
//!   nnz-balanced chunks per worker and idle workers steal from the top
//!   of loaded workers' deques, so a statically imbalanced plan (the
//!   power-law hub rows of a row-split plan, say) no longer serializes
//!   on one span. [`SchedPolicy::Auto`] (the default) inspects the
//!   static partition's nnz skew and only pays for stealing when the
//!   skew warrants it — balanced merge-path plans keep the static path,
//!   and its results, bit for bit.
//! * **Buffer arena** ([`crate::arena`]): output, batch-interleave, and
//!   shared-row scratch buffers are pooled per engine and checked out per
//!   execution, so steady-state inference allocates nothing. Outputs
//!   leave the engine as [`DenseMatrix`] values; callers hand them back
//!   with [`ExecEngine::recycle`] to close the loop (the GCN forward
//!   pass ping-pongs its activations this way).
//!
//! # Correctness envelope
//!
//! With one worker the engine accumulates in exactly the order of
//! [`crate::executor::execute_sequential`] (same per-element addition
//! order; every data path — scalar, tiled, vectorized — only regroups
//! output columns, never reorders additions within a column), so results
//! are exactly equal (f32 `==`, zero tolerance) to the oracle on every
//! path; the single representational deviation is the sign of a zero out
//! of the vectorized gather microkernel (a 0-ulp difference; see the
//! `datapath` module docs). With several
//! workers under the static scheduler, rows shared between workers fold
//! their per-worker partials in worker order — a fixed association that
//! is reproducible run to run for a given worker count but may differ
//! from the serial order by rounding — the same tolerance contract
//! `execute_parallel` has always had.
//!
//! # Staleness
//!
//! The cache trusts the caller's `epoch`: reusing an epoch after mutating
//! the matrix hands back a plan for the old sparsity pattern. The key also
//! includes `(rows, cols, nnz)` as a cheap tripwire, but callers must bump
//! the epoch on every mutation ([`GraphStream::generation`] in
//! `mpspmm-graphs` is the intended source).
//!
//! [`GraphStream::generation`]: https://docs.rs/mpspmm-graphs

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mpspmm_sparse::{AlignedVec, CsrMatrix, DenseMatrix, SparseFormatError};

use crate::arena::BufferArena;
use crate::batch::BatchShapeClass;
use crate::datapath::{
    accumulate_segment_dispatch, env_fastmath, prefetch_segment_rows, ColIdx, DataPath, PathKind,
    ResolvedPath,
};
use crate::epilogue::Epilogue;
use crate::executor::check_shapes;
use crate::plan::{chunk_threads, static_span_skew, ChunkDesc, Flush, KernelPlan};
use crate::pool::{EnginePool, ScopedJob, WorkerPool};
use crate::spgemm::{SpgemmSlots, SpgemmStrategy};
use crate::spmm::{default_workers, SpmmKernel};
use crate::stats::{SpgemmStats, TunerStats, WriteStats};
use crate::steal::run_stealing;
use crate::stripe::run_striped;
use crate::tuner::{arm_space, env_autotuner, ArmConfig, AutoTuner, GraphFingerprint, PlanTuner};
use crate::tuning::{
    GATHER_MAX_NNZ, STEAL_CHUNKS_PER_WORKER, STEAL_SKEW_THRESHOLD, STRIPE_MIN_DIM,
    STRIPE_SKEW_MIN_DIM,
};

/// Default bound on plans cached per engine. A single GNN inference
/// workload touches a handful of (kernel, dim) combinations per graph
/// epoch, but a long-lived *serving* process registers many graphs and
/// hot-swaps versions, so the bound is generous and eviction is
/// least-recently-used rather than wholesale; size it explicitly with
/// [`ExecEngine::with_plan_capacity`] when the default does not fit.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// One resident plan plus the LRU stamp the eviction policy orders by.
#[derive(Debug)]
struct CacheEntry {
    prep: Arc<PreparedPlan>,
    last_used: u64,
}

/// Slots resident in the batch-plan cache. Each slot is one batch-shape
/// *class* (a quantized composition histogram), so the bound is on
/// distinct workload shapes, not on windows served — 32 is generous for
/// any realistic mix of small-graph traffic.
pub const BATCH_PLAN_SLOTS: usize = 32;

/// Fingerprints resident per batch-shape-class slot. A class slot keeps
/// a small working set of exact compositions rather than a single one:
/// steady-state traffic often cycles through a handful of window
/// compositions that all quantize to the same class (e.g. bursts drawn
/// round-robin from one graph population), and a one-fingerprint slot
/// would rebuild on every window of such a cycle.
pub const BATCH_PLANS_PER_CLASS: usize = 8;

/// One resident plan within a class slot: the exact structural
/// fingerprint it was built for, and the LRU stamp.
#[derive(Debug)]
struct BatchPlanEntry {
    fingerprint: u64,
    prep: Arc<PreparedPlan>,
    last_used: u64,
}

/// One batch-shape-class slot: a bounded set of exact-composition plans
/// (intra-slot LRU past [`BATCH_PLANS_PER_CLASS`]) plus the slot-level
/// LRU stamp.
#[derive(Debug)]
struct BatchPlanSlot {
    entries: Vec<BatchPlanEntry>,
    last_used: u64,
}

/// The engine's bounded batch-plan cache, keyed by
/// [`BatchShapeClass::class_hash`] with fingerprint-gated reuse (see
/// [`crate::batch`]).
#[derive(Debug, Default)]
struct BatchPlanCache {
    map: HashMap<u64, BatchPlanSlot>,
    tick: u64,
}

/// The engine's bounded plan cache: a map plus a monotonic use counter.
/// Lookups stamp the entry; inserts past capacity evict the entry with
/// the oldest stamp (an O(n) scan — capacities are small enough that a
/// linked LRU list would be pure complexity).
#[derive(Debug, Default)]
struct PlanCache {
    map: HashMap<PlanKey, CacheEntry>,
    tick: u64,
}

/// How the engine writes a given output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowKind {
    /// No regular or atomic segment targets the row (it may still receive
    /// post-join carry adds, which need no synchronization).
    Untouched,
    /// Exactly one `Regular` segment and no `Atomic` segment: the logical
    /// thread `owner` holds the row's `&mut` slice and stores directly.
    Direct { owner: u32 },
    /// Shared or atomic updates: the row lives in slot `side` of the
    /// compact atomic side buffer for the parallel phase.
    Shared { side: u32 },
}

/// A plan plus the row classification and precomputed write statistics
/// the engine needs to execute it. Classification is independent of the
/// dense dimension, so one `PreparedPlan` serves any `B` width.
///
/// A prepared plan may additionally carry a 64-byte-aligned `u32` packing
/// of the matrix's column indices ([`pack_indices`](Self::pack_indices))
/// for the vectorized data path. Only the *structure* is packed — values
/// are always read live from the matrix at execution time, so value
/// re-weighting through [`CsrMatrix::values_mut`] never stales a cached
/// plan (structural mutations are caught by the plan-cache epoch and
/// shape tripwire as before).
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    pub(crate) plan: KernelPlan,
    pub(crate) row_kind: Vec<RowKind>,
    /// Row index of each side-buffer slot, in slot order.
    shared_rows: Vec<u32>,
    /// Cumulative nnz end offset per logical thread (`ends[t]` = total
    /// non-zeros owned by threads `0..=t`) — the input to the chunk
    /// splitter and the static-span skew metric.
    thread_nnz_ends: Vec<usize>,
    stats: WriteStats,
    /// Non-empty segments at/below and above [`GATHER_MAX_NNZ`] — the
    /// degree-adaptive dispatch split, precomputed so the engine bumps
    /// its counters once per run instead of once per segment.
    dispatch: (usize, usize),
    /// Cache-aligned `u32` column indices for the vectorized path.
    pub(crate) cols32: Option<AlignedVec<u32>>,
    /// Per row: the row is finalized entirely by its single parallel-phase
    /// `Regular` store (`Direct` *and* no `Carry` segment targets it), so
    /// a fused [`Epilogue`] may be applied at store time while the row is
    /// register-hot.
    pub(crate) fused_ok: Vec<bool>,
    /// Rows whose epilogue must wait for the serial replay phase —
    /// shared/atomic rows, carry-receiving rows, and untouched rows (a
    /// bias changes even all-zero rows) — ascending.
    deferred_rows: Vec<u32>,
    /// Target rows of the plan's parallel-phase writes (`Regular` and
    /// `Atomic` segments; carries merge serially and don't count) are
    /// non-decreasing in `(thread, segment)` order. True for every
    /// kernel planner in the tree — merge-path, row-split, and nnz-split
    /// all walk rows forward — and it lets the static scheduler route
    /// each worker's `Direct` rows through one contiguous output span
    /// instead of a per-row hash map.
    write_rows_monotonic: bool,
    /// First row each logical thread writes in the parallel phase
    /// (`u32::MAX` for threads with no `Regular`/`Atomic` segment) — the
    /// span boundaries for monotonic static routing.
    thread_first_write_row: Vec<u32>,
    /// Online auto-tuner slot: present only on plans built through
    /// [`ExecEngine::plan_cached`] on a tuning-enabled engine. Shared
    /// (`Arc`) so every clone of the plan — and the cache entry — feeds
    /// one explorer.
    pub(crate) tuner: Option<Arc<PlanTuner>>,
    /// Every write segment is a `Regular` store into a row it owns alone
    /// — no atomics, no carries, no shared side buffer. Row-aligned
    /// batch plans ([`crate::BatchMergeSpmm`]) are always in this class;
    /// the single-worker executor then folds each row in one tight pass
    /// with no per-segment flush dispatch (see [`run_inline_direct`]).
    pub(crate) all_direct: bool,
}

impl PreparedPlan {
    /// Classifies every output row of `plan` for a matrix with `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if a segment targets a row `>= rows`.
    pub fn new(plan: KernelPlan, rows: usize) -> Self {
        #[derive(Clone, Copy, Default)]
        struct RowInfo {
            regular: u32,
            atomic: u32,
            owner: u32,
        }
        let mut info = vec![RowInfo::default(); rows];
        let mut carry_row = vec![false; rows];
        let mut stats = WriteStats::default();
        let mut thread_first_write_row = vec![u32::MAX; plan.threads.len()];
        let mut write_rows_monotonic = true;
        let mut last_write_row = 0u32;
        for (t, seg) in plan.iter_segments() {
            if !matches!(seg.flush, Flush::Carry) {
                let r = seg.row as u32;
                if r < last_write_row {
                    write_rows_monotonic = false;
                }
                last_write_row = r;
                if thread_first_write_row[t] == u32::MAX {
                    thread_first_write_row[t] = r;
                }
            }
            match seg.flush {
                Flush::Regular => {
                    info[seg.row].regular += 1;
                    info[seg.row].owner = t as u32;
                    stats.regular_row_writes += 1;
                    stats.regular_nnz += seg.len();
                }
                Flush::Atomic => {
                    info[seg.row].atomic += 1;
                    stats.atomic_row_updates += 1;
                    stats.atomic_nnz += seg.len();
                }
                Flush::Carry => {
                    carry_row[seg.row] = true;
                    stats.serial_row_updates += 1;
                    stats.serial_nnz += seg.len();
                }
            }
        }
        let mut shared_rows = Vec::new();
        let row_kind: Vec<RowKind> = info
            .iter()
            .enumerate()
            .map(|(row, ri)| {
                if ri.regular == 1 && ri.atomic == 0 {
                    RowKind::Direct { owner: ri.owner }
                } else if ri.regular + ri.atomic > 0 {
                    let side = shared_rows.len() as u32;
                    shared_rows.push(row as u32);
                    RowKind::Shared { side }
                } else {
                    RowKind::Untouched
                }
            })
            .collect();
        // A fused epilogue may run at store time only where the store is
        // the row's final value; every other row waits for the serial
        // replay phase (see the `epilogue` module docs).
        let mut fused_ok = vec![false; rows];
        let mut deferred_rows = Vec::new();
        for (row, kind) in row_kind.iter().enumerate() {
            if matches!(kind, RowKind::Direct { .. }) && !carry_row[row] {
                fused_ok[row] = true;
            } else {
                deferred_rows.push(row as u32);
            }
        }
        let dispatch = plan.dispatch_profile(GATHER_MAX_NNZ);
        let mut thread_nnz_ends = Vec::with_capacity(plan.threads.len());
        let mut cum = 0usize;
        for tp in &plan.threads {
            cum += tp.nnz();
            thread_nnz_ends.push(cum);
        }
        let all_direct = shared_rows.is_empty()
            && stats.atomic_row_updates == 0
            && stats.serial_row_updates == 0;
        Self {
            plan,
            row_kind,
            shared_rows,
            thread_nnz_ends,
            stats,
            dispatch,
            cols32: None,
            fused_ok,
            deferred_rows,
            write_rows_monotonic,
            thread_first_write_row,
            tuner: None,
            all_direct,
        }
    }

    /// Classifies `plan` for `a` and packs `a`'s column indices for the
    /// vectorized data path in one step — the constructor the plan cache
    /// uses, so every cached plan executes on packed indices.
    pub fn for_matrix(plan: KernelPlan, a: &CsrMatrix<f32>) -> Self {
        let mut prep = Self::new(plan, a.rows());
        prep.pack_indices(a);
        prep
    }

    /// Packs `a`'s column indices into a 64-byte-aligned `u32` array for
    /// the vectorized data path (halves index bandwidth versus the CSR
    /// `usize` array). A no-op if `a` has more columns than `u32` can
    /// index — the engine then falls back to the plain indices.
    ///
    /// `a` must be the matrix this plan was built for (same staleness
    /// contract as the plan itself).
    pub fn pack_indices(&mut self, a: &CsrMatrix<f32>) {
        if a.cols() > u32::MAX as usize {
            return;
        }
        let src = a.col_indices();
        self.cols32 = Some(AlignedVec::from_fn(src.len(), |i| src[i] as u32));
    }

    /// Whether this plan carries the packed `u32` index array.
    pub fn has_packed_indices(&self) -> bool {
        self.cols32.is_some()
    }

    /// The degree-adaptive dispatch split of this plan's non-empty
    /// segments: `(gather_bound, stream_bound)` at the
    /// [`GATHER_MAX_NNZ`] threshold.
    pub fn dispatch_profile(&self) -> (usize, usize) {
        self.dispatch
    }

    /// The underlying plan.
    pub fn plan(&self) -> &KernelPlan {
        &self.plan
    }

    /// The write statistics any execution of this plan realizes (they are
    /// a property of the plan, not of the operand values).
    pub fn expected_stats(&self) -> WriteStats {
        self.stats
    }

    /// Number of rows routed through the atomic side buffer.
    pub fn shared_row_count(&self) -> usize {
        self.shared_rows.len()
    }

    /// Number of rows written directly with non-atomic stores.
    pub fn direct_row_count(&self) -> usize {
        self.row_kind
            .iter()
            .filter(|k| matches!(k, RowKind::Direct { .. }))
            .count()
    }

    /// Number of rows a fused [`Epilogue`] is applied to at store time —
    /// `Direct` rows that receive no post-join carry. All remaining rows
    /// get their epilogue in the serial replay phase.
    pub fn fusable_row_count(&self) -> usize {
        self.fused_ok.iter().filter(|&&f| f).count()
    }

    /// Splits this plan's logical threads into at most `target`
    /// contiguous, nnz-balanced stealable chunks (see
    /// [`chunk_threads`]).
    pub fn chunk_descriptors(&self, target: usize) -> Vec<ChunkDesc> {
        chunk_threads(&self.thread_nnz_ends, target)
    }

    /// Rows whose fused epilogue waits for the serial/stripe-local replay
    /// phase — the column-striped executor applies these per stripe.
    pub(crate) fn deferred_rows(&self) -> &[u32] {
        &self.deferred_rows
    }

    /// Non-zero skew (max/mean) of the static per-worker span partition
    /// the engine would use for this plan at `workers` workers — the
    /// imbalance work stealing can recover, and the signal
    /// [`SchedPolicy::Auto`] thresholds on.
    pub fn static_span_skew(&self, workers: usize) -> f64 {
        static_span_skew(&self.thread_nnz_ends, workers)
    }

    /// Convergence status of this plan's online auto-tuner slot, or
    /// `None` when the plan was prepared without one (tuning disabled,
    /// or the plan was built directly rather than through
    /// [`ExecEngine::plan_cached`]).
    pub fn tune_state(&self) -> Option<crate::tuner::TuneState> {
        self.tuner.as_ref().map(|t| t.status())
    }

    /// Total non-zeros the plan's logical threads own.
    pub(crate) fn total_nnz(&self) -> usize {
        *self.thread_nnz_ends.last().unwrap_or(&0)
    }
}

/// How the engine maps a prepared plan onto its pool workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// One contiguous, equal-thread-count span per worker (the original
    /// engine scheduler). Near-optimal for merge-path plans, which are
    /// nnz-balanced per logical thread by construction.
    Static,
    /// Work stealing over fine-grained chunk descriptors
    /// ([`crate::steal`]): pay a little scheduling traffic to bound the
    /// critical path on statically imbalanced plans.
    Stealing,
    /// Column-striped execution ([`crate::stripe`]): each worker owns a
    /// contiguous feature-column stripe of *all* rows and replays the
    /// full plan walk over it — no shared rows, no strip folding, no
    /// cross-worker carries, and output bit-identical to the sequential
    /// oracle at any worker count. Pays an index re-stream per stripe,
    /// so it only wins at wide dense dimensions.
    ColumnStriped,
    /// Per-run choice by input shape: column striping when the dense
    /// dimension is wide enough to amortize its index re-stream
    /// ([`STRIPE_MIN_DIM`], or [`STRIPE_SKEW_MIN_DIM`] when the static
    /// partition is also skewed); else stealing when the static
    /// partition's nnz skew ([`PreparedPlan::static_span_skew`]) exceeds
    /// [`STEAL_SKEW_THRESHOLD`]; else the static path — so balanced
    /// narrow-dim graphs keep the static scheduler's output bit for bit.
    #[default]
    Auto,
}

/// Snapshot of an engine's plan-cache and data-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// [`ExecEngine::spmm_cached`] calls served from the plan cache.
    pub plan_cache_hits: u64,
    /// [`ExecEngine::spmm_cached`] calls that had to plan from scratch.
    pub plan_cache_misses: u64,
    /// Plans currently resident in the cache.
    pub cached_plans: usize,
    /// Plans evicted because the cache reached its capacity bound
    /// (least-recently-used first), cumulative since the last
    /// [`ExecEngine::clear_cache`].
    pub plan_cache_evictions: u64,
    /// Worker parallelism the engine executes with.
    pub workers: usize,
    /// Segments the degree-adaptive dispatcher routed to the gather
    /// microkernel (vectorized data path only), cumulative over runs.
    pub gather_segments: u64,
    /// Segments routed to the streaming panel kernel (vectorized data
    /// path only), cumulative over runs.
    pub stream_segments: u64,
    /// Chunks executed by a worker other than the one they were dealt
    /// to (stealing scheduler only), cumulative over runs.
    pub steals: u64,
    /// Steal probes that found the victim's deque empty (stealing
    /// scheduler only), cumulative over runs.
    pub steal_fails: u64,
    /// Chunk descriptors executed by the stealing scheduler, cumulative
    /// over runs. Zero means every run so far took the static path.
    pub chunks_executed: u64,
    /// Buffer checkouts served from the arena pool without allocating.
    pub arena_reuses: u64,
    /// Buffer checkouts that had to allocate a fresh buffer.
    pub arena_misses: u64,
    /// Column panels executed by the engine's parallel dense GEMM
    /// ([`ExecEngine::gemm`]), cumulative over runs.
    pub gemm_panels: u64,
    /// Column stripes executed by the column-striped scheduler
    /// ([`SchedPolicy::ColumnStriped`] or a wide-dim `Auto` run),
    /// cumulative over runs. Zero means no run so far striped.
    pub stripes_executed: u64,
    /// Reduction-depth blocks executed by the engine's dense GEMM (the
    /// `k`-blocking that keeps the `B` panel L2-resident), cumulative
    /// over runs.
    pub kblocks: u64,
    /// SpMM and GEMM runs that executed with FastMath (FMA contraction)
    /// enabled — always zero unless the engine opted in via
    /// [`ExecEngine::with_fast_math`] or `MPSPMM_FASTMATH`.
    pub fastmath_runs: u64,
    /// Engine runs that fused a non-noop [`Epilogue`] into the SpMM
    /// store stage instead of paying a separate activation pass.
    pub fused_epilogues: u64,
    /// Wall nanoseconds spent inside the engine's dense GEMM, cumulative
    /// — together with the SpMM wall time this is the "where the time
    /// goes" split of a fused GCN layer.
    pub gemm_ns: u64,
    /// Online auto-tuner counters (see [`TunerStats`]): explorations,
    /// their wall/excess time, and how many plans converged or
    /// warm-started. All zero unless the engine carries an
    /// [`AutoTuner`] ([`ExecEngine::with_autotuner`] or `MPSPMM_TUNE`).
    pub tuner: TunerStats,
    /// Sparse×sparse counters (see [`SpgemmStats`]): rows executed
    /// through [`ExecEngine::spgemm`], the per-accumulator row
    /// distribution, and the symbolic/numeric phase wall split. All
    /// zero until the first `spgemm` call.
    pub spgemm: SpgemmStats,
    /// [`ExecEngine::plan_batch_cached`] calls whose batch-shape-class
    /// slot held a plan with a matching structural fingerprint.
    pub batch_plan_hits: u64,
    /// Calls whose class had no resident slot yet (first window of a
    /// composition).
    pub batch_plan_misses: u64,
    /// Calls that found the slot but with a stale fingerprint — the
    /// batch composition changed, so the plan was rebuilt and replaced
    /// *in place* (no new key, no LRU pressure).
    pub batch_plan_rebuilds: u64,
}

impl EngineStats {
    /// Fraction of cached-SpMM calls served from the cache, in `[0, 1]`
    /// (0 before any call).
    pub fn hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

/// Plan-cache key: which kernel (by name *and* configuration), which
/// graph snapshot, which operand shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    kernel: &'static str,
    config: u64,
    epoch: u64,
    rows: usize,
    cols: usize,
    nnz: usize,
    dim: usize,
}

/// The fast-path SpMM execution engine. See the module docs for the four
/// optimizations it layers over [`crate::executor::execute_parallel`].
pub struct ExecEngine {
    pub(crate) workers: usize,
    /// Which worker pool parallel phases submit to — the process-global
    /// pool by default, or an engine-private one
    /// ([`ExecEngine::with_worker_count`]) so co-resident engines
    /// (sharded execution) never contend on one queue.
    pub(crate) pool: EnginePool,
    pub(crate) data_path: DataPath,
    pub(crate) sched_policy: SchedPolicy,
    /// FastMath opt-in (FMA contraction in the SpMM/GEMM kernels) —
    /// defaults to the `MPSPMM_FASTMATH` environment opt-in, i.e. off.
    pub(crate) fast_math: bool,
    /// `k`-blocking of the dense GEMM (on by default). Exists as an A/B
    /// ablation switch for benchmarks: `false` restores the unblocked
    /// full-`k` sweep of the pre-blocking data path. Results are bitwise
    /// identical either way (blocks are visited in ascending `k` order
    /// with destination-seeded accumulators).
    pub(crate) k_blocking: bool,
    plan_capacity: usize,
    cache: Mutex<PlanCache>,
    batch_plans: Mutex<BatchPlanCache>,
    batch_hits: AtomicU64,
    batch_misses: AtomicU64,
    batch_rebuilds: AtomicU64,
    pub(crate) arena: BufferArena,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    gather: AtomicU64,
    stream: AtomicU64,
    steals: AtomicU64,
    steal_fails: AtomicU64,
    chunks_executed: AtomicU64,
    pub(crate) gemm_panels: AtomicU64,
    stripes_executed: AtomicU64,
    pub(crate) kblocks: AtomicU64,
    pub(crate) fastmath_runs: AtomicU64,
    fused_epilogues: AtomicU64,
    pub(crate) gemm_ns: AtomicU64,
    /// Cumulative non-zeros executed per worker slot, for the busy-
    /// fraction report of the stealing benchmark.
    worker_nnz: Mutex<Vec<u64>>,
    /// Online auto-tuner this engine files verdicts with (`None` = the
    /// static heuristics run untouched).
    tuner: Option<Arc<AutoTuner>>,
    pub(crate) tuner_explorations: AtomicU64,
    pub(crate) tuner_exploration_ns: AtomicU64,
    pub(crate) tuner_excess_ns: AtomicU64,
    pub(crate) tuner_converged: AtomicU64,
    tuner_plans: AtomicU64,
    tuner_warm: AtomicU64,
    /// Accumulator strategy untuned SpGEMM runs pin
    /// ([`SpgemmStrategy::Adaptive`] = the per-row classifier).
    pub(crate) spgemm_strategy: SpgemmStrategy,
    pub(crate) spgemm_rows: AtomicU64,
    pub(crate) spgemm_dense: AtomicU64,
    pub(crate) spgemm_hash: AtomicU64,
    pub(crate) spgemm_merge: AtomicU64,
    pub(crate) spgemm_symbolic_ns: AtomicU64,
    pub(crate) spgemm_numeric_ns: AtomicU64,
    /// Per-shape-class SpGEMM tuner slots (see `crate::spgemm`); only
    /// populated when a tuner is attached.
    pub(crate) spgemm_slots: Mutex<SpgemmSlots>,
}

impl ExecEngine {
    /// An engine that executes with `workers`-way parallelism
    /// (`workers == 1` runs entirely on the calling thread, atomics-free)
    /// on the default ([`DataPath::Auto`]) data path.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        Self::with_data_path(workers, DataPath::Auto)
    }

    /// An engine pinned to a specific inner [`DataPath`] — used by the
    /// benchmarks to compare paths on one binary and by tests to force
    /// the scalar oracle.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_data_path(workers: usize, data_path: DataPath) -> Self {
        Self::with_plan_capacity(workers, data_path, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// An engine with an explicit plan-cache capacity bound (LRU
    /// eviction past the bound). Long-lived serving processes that
    /// register many graphs size this to their working set; the
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`] default is generous for everything
    /// else.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `plan_capacity == 0`.
    pub fn with_plan_capacity(workers: usize, data_path: DataPath, plan_capacity: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            plan_capacity > 0,
            "plan cache needs capacity for at least one plan"
        );
        Self {
            workers,
            pool: EnginePool::Global,
            data_path,
            sched_policy: SchedPolicy::default(),
            fast_math: env_fastmath(),
            k_blocking: true,
            plan_capacity,
            cache: Mutex::new(PlanCache::default()),
            batch_plans: Mutex::new(BatchPlanCache::default()),
            batch_hits: AtomicU64::new(0),
            batch_misses: AtomicU64::new(0),
            batch_rebuilds: AtomicU64::new(0),
            arena: BufferArena::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            gather: AtomicU64::new(0),
            stream: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            steal_fails: AtomicU64::new(0),
            chunks_executed: AtomicU64::new(0),
            gemm_panels: AtomicU64::new(0),
            stripes_executed: AtomicU64::new(0),
            kblocks: AtomicU64::new(0),
            fastmath_runs: AtomicU64::new(0),
            fused_epilogues: AtomicU64::new(0),
            gemm_ns: AtomicU64::new(0),
            worker_nnz: Mutex::new(vec![0; workers]),
            tuner: env_autotuner(),
            tuner_explorations: AtomicU64::new(0),
            tuner_exploration_ns: AtomicU64::new(0),
            tuner_excess_ns: AtomicU64::new(0),
            tuner_converged: AtomicU64::new(0),
            tuner_plans: AtomicU64::new(0),
            tuner_warm: AtomicU64::new(0),
            spgemm_strategy: SpgemmStrategy::default(),
            spgemm_rows: AtomicU64::new(0),
            spgemm_dense: AtomicU64::new(0),
            spgemm_hash: AtomicU64::new(0),
            spgemm_merge: AtomicU64::new(0),
            spgemm_symbolic_ns: AtomicU64::new(0),
            spgemm_numeric_ns: AtomicU64::new(0),
            spgemm_slots: Mutex::new(SpgemmSlots::default()),
        }
    }

    /// An engine with an **engine-private worker pool** of exactly
    /// `workers`-way parallelism: `workers - 1` dedicated pool threads
    /// plus the calling thread, spawned lazily on the first parallel
    /// run. This replaces the process-global `MPSPMM_WORKERS` sizing
    /// for this engine — co-resident engines (one per shard of a
    /// partitioned graph, see [`crate::ShardedEngine`]) each take their
    /// own count and their jobs never queue behind another engine's.
    ///
    /// Under the `MPSPMM_PIN=1` opt-in the private pool's workers pin
    /// to consecutive CPU cores starting at
    /// [`with_pin_base`](Self::with_pin_base) (default 0); see the
    /// [`crate::pool`] docs for the best-effort semantics.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_worker_count(workers: usize) -> Self {
        let mut engine = Self::new(workers);
        engine.pool = EnginePool::private(workers, 0);
        engine
    }

    /// Sets the first CPU core this engine's private pool pins from
    /// (only meaningful after [`with_worker_count`](Self::with_worker_count)
    /// and under `MPSPMM_PIN=1`; a global-pool engine ignores it).
    /// Shard `s` of a sharded deployment passes `s × workers` so
    /// sibling engines claim disjoint core windows.
    ///
    /// # Panics
    ///
    /// Panics if the private pool already spawned its threads.
    #[must_use]
    pub fn with_pin_base(mut self, base: usize) -> Self {
        self.pool.set_pin_base(base);
        self
    }

    /// Whether this engine runs on its own private worker pool rather
    /// than the process-global one.
    pub fn has_private_pool(&self) -> bool {
        self.pool.is_private()
    }

    /// The core this engine's private pool pins from (0 when unset or
    /// on the global pool).
    pub fn pin_base(&self) -> usize {
        self.pool.pin_base()
    }

    /// An engine pinned to a specific [`SchedPolicy`] — benchmarks and
    /// tests compare the static and stealing schedulers on one binary;
    /// everything else should keep the [`SchedPolicy::Auto`] default.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_sched_policy(workers: usize, data_path: DataPath, policy: SchedPolicy) -> Self {
        let mut engine = Self::with_data_path(workers, data_path);
        engine.sched_policy = policy;
        engine
    }

    /// Opts this engine into (or out of) **FastMath**: FMA contraction
    /// in the streaming SpMM kernel and the GEMM microkernel. FastMath
    /// results differ from the exact default by a rounding-level amount
    /// per product (see the `datapath` module docs and DESIGN.md §2.11)
    /// — the default, and every oracle, stays exact. Without this call
    /// the flag follows the `MPSPMM_FASTMATH` environment opt-in.
    #[must_use]
    pub fn with_fast_math(mut self, fast_math: bool) -> Self {
        self.fast_math = fast_math;
        self
    }

    /// Whether this engine requests FastMath (FMA contraction). The
    /// request only takes effect on the vectorized data path on CPUs
    /// whose fma support is proven
    /// ([`crate::fastmath_supported`]).
    pub fn fast_math(&self) -> bool {
        self.fast_math
    }

    /// Attaches an online [`AutoTuner`]: every plan built through
    /// [`plan_cached`](Self::plan_cached) from now on carries an
    /// explorer over its pruned configuration arm space, measured on
    /// live executions until it converges; verdicts are filed in (and
    /// warm-started from) `tuner`'s fingerprint-keyed table. Without
    /// this call the engine follows the `MPSPMM_TUNE` /
    /// `MPSPMM_CALIB_PATH` process opt-in, i.e. tuning is off by
    /// default and `Auto` dispatch uses the static heuristics.
    #[must_use]
    pub fn with_autotuner(mut self, tuner: Arc<AutoTuner>) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// The calibration table this engine tunes against, if any.
    pub fn autotuner(&self) -> Option<&Arc<AutoTuner>> {
        self.tuner.as_ref()
    }

    /// The quantized shape class `prep` at dense dimension `dim` files
    /// under in the calibration table.
    pub fn tuner_fingerprint(&self, prep: &PreparedPlan, dim: usize) -> GraphFingerprint {
        let logical = prep.plan.threads.len();
        let eff = self.workers.min(logical).max(1);
        let (gather, stream) = prep.dispatch;
        GraphFingerprint::from_features(
            prep.row_kind.len(),
            prep.total_nnz(),
            dim,
            prep.static_span_skew(eff),
            gather,
            stream,
            eff,
        )
    }

    /// The configuration arm space this engine's tuner would explore
    /// for `prep` at dense dimension `dim` — exposed so tests and the
    /// autotune benchmark can enumerate the hand-pinnable candidates.
    /// Pure: independent of whether a tuner is attached.
    pub fn tuner_arm_space(&self, prep: &PreparedPlan, dim: usize) -> Vec<ArmConfig> {
        let fp = self.tuner_fingerprint(prep, dim);
        arm_space(&fp, self.sched_policy, self.data_path, self.fast_math)
    }

    /// Builds the tuner slot for a freshly prepared plan, warm-starting
    /// from the calibration table when it already holds a verdict for
    /// the fingerprint *that is still a member of the current arm
    /// space* — a verdict recorded by, say, a FastMath process is not
    /// replayable on this engine and falls back to exploring.
    fn tuner_slot(&self, prep: &PreparedPlan, dim: usize) -> Option<Arc<PlanTuner>> {
        let tuner = self.tuner.as_ref()?;
        if dim == 0 || prep.plan.threads.is_empty() {
            return None;
        }
        let fp = self.tuner_fingerprint(prep, dim);
        let arms = arm_space(&fp, self.sched_policy, self.data_path, self.fast_math);
        self.tuner_plans.fetch_add(1, Ordering::Relaxed);
        if let Some(best) = tuner.lookup(&fp) {
            if arms.contains(&best) {
                self.tuner_warm.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::new(PlanTuner::warm(fp, best, arms)));
            }
        }
        Some(Arc::new(PlanTuner::exploring(fp, arms)))
    }

    /// Resolves an arm's data path against `dim`, applying the arm's
    /// panel halving and honoring the engine's FastMath opt-in (an arm
    /// can only *request* contraction; the engine gate is ANDed in so a
    /// poisoned arm can never enable it on an exact engine).
    fn resolve_arm(&self, arm: ArmConfig, dim: usize) -> ResolvedPath {
        let mut rp = arm.path.resolve_fast(dim, arm.fast_math && self.fast_math);
        if arm.half_panel {
            let lanes = rp.lanes.lanes();
            rp.panel = ((rp.panel / 2).max(lanes) / lanes) * lanes;
        }
        rp
    }

    /// Disables (or re-enables) `k`-blocking in [`ExecEngine::gemm`].
    /// This is an A/B measurement switch — `false` reproduces the
    /// unblocked full-`k` sweep of the pre-blocking data path so
    /// benchmarks can isolate what the L2-resident `B` slab buys.
    /// Output bits are identical either way; only the cache behavior
    /// (and the [`crate::EngineStats::kblocks`] counter) changes.
    #[must_use]
    pub fn with_k_blocking(mut self, k_blocking: bool) -> Self {
        self.k_blocking = k_blocking;
        self
    }

    /// Whether [`ExecEngine::gemm`] blocks the reduction dimension.
    pub fn k_blocking(&self) -> bool {
        self.k_blocking
    }

    /// The plan-cache capacity bound this engine evicts at.
    pub fn plan_capacity(&self) -> usize {
        self.plan_capacity
    }

    /// The inner data path this engine executes segments through.
    pub fn data_path(&self) -> DataPath {
        self.data_path
    }

    /// The scheduling policy this engine maps plans to workers with.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched_policy
    }

    /// Whether a run of `prep` on this engine would take the stealing
    /// scheduler — the [`SchedPolicy::Auto`] decision, exposed so
    /// benchmarks and tests can assert on the policy choice. Striping is
    /// consulted first: a run that stripes never steals.
    pub fn selects_stealing(&self, prep: &PreparedPlan) -> bool {
        let eff_workers = self.workers.min(prep.plan.threads.len());
        if eff_workers <= 1 {
            return false;
        }
        match self.sched_policy {
            SchedPolicy::Static => false,
            SchedPolicy::Stealing => true,
            SchedPolicy::ColumnStriped => false,
            SchedPolicy::Auto => prep.static_span_skew(eff_workers) > STEAL_SKEW_THRESHOLD,
        }
    }

    /// Whether a run of `prep` at dense dimension `dim` would take the
    /// column-striped scheduler — the wide-dimension half of the
    /// [`SchedPolicy::Auto`] decision, exposed so benchmarks and tests
    /// can assert on the policy choice. `Auto` stripes unconditionally
    /// at [`STRIPE_MIN_DIM`] columns, and already at
    /// [`STRIPE_SKEW_MIN_DIM`] when the static partition is skewed
    /// (striping fixes skew *and* the serial tail, so it beats stealing
    /// there). Striping needs at least two workers and the vectorized
    /// data path's lane machinery, but any plan shape qualifies.
    pub fn selects_striping(&self, prep: &PreparedPlan, dim: usize) -> bool {
        let eff_workers = self.workers.min(prep.plan.threads.len());
        if eff_workers <= 1 || dim == 0 {
            return false;
        }
        match self.sched_policy {
            SchedPolicy::Static | SchedPolicy::Stealing => false,
            SchedPolicy::ColumnStriped => true,
            SchedPolicy::Auto => {
                dim >= STRIPE_MIN_DIM
                    || (dim >= STRIPE_SKEW_MIN_DIM
                        && prep.static_span_skew(eff_workers) > STEAL_SKEW_THRESHOLD)
            }
        }
    }

    /// The process-wide engine, sized by [`default_workers`] (which honors
    /// the `MPSPMM_WORKERS` override).
    pub fn global() -> &'static ExecEngine {
        static ENGINE: OnceLock<ExecEngine> = OnceLock::new();
        ENGINE.get_or_init(|| ExecEngine::new(default_workers()))
    }

    /// Worker parallelism this engine executes with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes a plan without touching the plan cache (classification is
    /// redone per call). This is what [`SpmmKernel::spmm_with_stats`]
    /// routes through.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    pub fn execute(
        &self,
        plan: &KernelPlan,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        check_shapes(a, b)?;
        let prep = PreparedPlan::new(plan.clone(), a.rows());
        Ok(self.run(&prep, a, b, &Epilogue::None))
    }

    /// Executes a previously classified plan.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `prep` was classified for a different row count than
    /// `a.rows()`.
    pub fn execute_prepared(
        &self,
        prep: &PreparedPlan,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        check_shapes(a, b)?;
        Ok(self.run(prep, a, b, &Epilogue::None))
    }

    /// Executes a previously classified plan with a fused [`Epilogue`]
    /// applied at the store stage: rows finalized in the parallel phase
    /// (`Direct`, no carry) get the epilogue while register-hot; every
    /// other row gets it in the serial replay phase, after its final SpMM
    /// value exists. The result is element-for-element identical to
    /// `execute_prepared` followed by a separate epilogue pass, without
    /// re-streaming the output (see DESIGN.md §2.10).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()` or a bias epilogue's length differs from
    /// `b.cols()`.
    ///
    /// # Panics
    ///
    /// Panics if `prep` was classified for a different row count than
    /// `a.rows()`.
    pub fn execute_prepared_fused(
        &self,
        prep: &PreparedPlan,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        epi: &Epilogue,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        check_shapes(a, b)?;
        epi.validate(b.cols())?;
        Ok(self.run(prep, a, b, epi))
    }

    /// Computes `kernel`'s SpMM through the plan cache: on a hit the
    /// merge-path planning and row classification are skipped entirely.
    ///
    /// `epoch` identifies the sparsity snapshot of `a` — bump it on every
    /// mutation (see the module docs on staleness).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    pub fn spmm_cached(
        &self,
        kernel: &dyn SpmmKernel,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        epoch: u64,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        check_shapes(a, b)?;
        let prep = self.plan_cached(kernel, a, b.cols(), epoch);
        Ok(self.run(&prep, a, b, &Epilogue::None))
    }

    /// [`spmm_cached`](Self::spmm_cached) with a fused [`Epilogue`] —
    /// the cached SpMM half of the fused GCN layer pipeline
    /// (`GcnLayer::forward_cached` routes through this).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()` or a bias epilogue's length differs from
    /// `b.cols()`.
    pub fn spmm_cached_fused(
        &self,
        kernel: &dyn SpmmKernel,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        epoch: u64,
        epi: &Epilogue,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        check_shapes(a, b)?;
        epi.validate(b.cols())?;
        let prep = self.plan_cached(kernel, a, b.cols(), epoch);
        Ok(self.run(&prep, a, b, epi))
    }

    /// Fetches (or builds, classifies, index-packs, and caches) the
    /// prepared plan for `kernel` on `a` at dense dimension `dim` —
    /// the planning half of [`spmm_cached`](Self::spmm_cached), exposed
    /// so callers that know their layer shapes up front (a GCN forward
    /// pass, a benchmark loop) can warm the cache and then execute
    /// through [`execute_prepared`](Self::execute_prepared) with zero
    /// planning on the timed path.
    pub fn plan_cached(
        &self,
        kernel: &dyn SpmmKernel,
        a: &CsrMatrix<f32>,
        dim: usize,
        epoch: u64,
    ) -> Arc<PreparedPlan> {
        let key = PlanKey {
            kernel: kernel.name(),
            config: kernel.config_fingerprint(),
            epoch,
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            dim,
        };
        {
            let mut cache = self.cache.lock().unwrap();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.map.get_mut(&key) {
                entry.last_used = tick;
                let prep = Arc::clone(&entry.prep);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return prep;
            }
        }
        // Plan outside the lock: planning is the expensive part, and a
        // racing miss on the same key merely builds the plan twice (the
        // second insert wins), which is the same behavior spmm_cached has
        // always had.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut prep = PreparedPlan::for_matrix(kernel.plan(a, dim), a);
        prep.tuner = self.tuner_slot(&prep, dim);
        let prep = Arc::new(prep);
        let mut cache = self.cache.lock().unwrap();
        while cache.map.len() >= self.plan_capacity {
            let victim = cache
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    // Recycle measured state instead of dropping it
                    // with the entry: a converged verdict goes through
                    // the calibration table, so re-admitting the plan
                    // later warm-starts instead of re-exploring.
                    if let Some(entry) = cache.map.remove(&k) {
                        if let (Some(table), Some(slot)) =
                            (self.tuner.as_deref(), entry.prep.tuner.as_ref())
                        {
                            if let Some(arm) = slot.converged_arm() {
                                table.record(slot.fingerprint(), arm);
                            }
                        }
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        cache.tick += 1;
        let last_used = cache.tick;
        cache.map.insert(
            key,
            CacheEntry {
                prep: Arc::clone(&prep),
                last_used,
            },
        );
        prep
    }

    /// Fetches (or builds) the prepared plan for a block-diagonal
    /// mega-batch, cached by **batch-shape class** instead of exact
    /// shape: `class` picks one of at most [`BATCH_PLAN_SLOTS`] slots by
    /// its quantized composition hash, and its exact structural
    /// fingerprint gates reuse within the slot — a resident fingerprint
    /// returns its plan, a known class with a new composition re-plans
    /// and joins the slot's working set of up to
    /// [`BATCH_PLANS_PER_CLASS`] plans (counted as a rebuild, evicting
    /// intra-slot LRU), and an absent class plans fresh (miss, LRU past
    /// the slot bound). See [`crate::batch`] for why the ordinary
    /// exact-shape cache would thrash under packed serving.
    ///
    /// Reuse is sound because the fingerprint covers every constituent's
    /// `(rows, nnz, structure_hash)`: identical fingerprints mean an
    /// identical packed sparsity structure (modulo hash collision), and
    /// a [`PreparedPlan`] depends on structure only — values are read
    /// live at execution time.
    ///
    /// Batch plans skip the online auto-tuner: windows are transient and
    /// per-class, so exploration would never amortize.
    pub fn plan_batch_cached(
        &self,
        kernel: &dyn SpmmKernel,
        a: &CsrMatrix<f32>,
        dim: usize,
        class: &BatchShapeClass,
    ) -> Arc<PreparedPlan> {
        {
            let mut cache = self.batch_plans.lock().unwrap();
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(slot) = cache.map.get_mut(&class.class_hash()) {
                if let Some(entry) = slot
                    .entries
                    .iter_mut()
                    .find(|e| e.fingerprint == class.fingerprint())
                {
                    entry.last_used = tick;
                    slot.last_used = tick;
                    self.batch_hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&entry.prep);
                }
            }
        }
        // Plan outside the lock (same racing-miss argument as
        // `plan_cached`: the second insert wins).
        let prep = Arc::new(PreparedPlan::for_matrix(kernel.plan(a, dim), a));
        let mut cache = self.batch_plans.lock().unwrap();
        cache.tick += 1;
        let last_used = cache.tick;
        let entry = BatchPlanEntry {
            fingerprint: class.fingerprint(),
            prep: Arc::clone(&prep),
            last_used,
        };
        match cache.map.get_mut(&class.class_hash()) {
            Some(slot) => {
                // Known class, new exact composition: admit it to the
                // slot's working set, evicting intra-slot LRU so the
                // per-class footprint stays bounded.
                self.batch_rebuilds.fetch_add(1, Ordering::Relaxed);
                slot.last_used = last_used;
                // A racing miss may have inserted the same fingerprint
                // while we planned; replace rather than duplicate.
                slot.entries
                    .retain(|e| e.fingerprint != class.fingerprint());
                while slot.entries.len() >= BATCH_PLANS_PER_CLASS {
                    let victim = slot
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i);
                    match victim {
                        Some(i) => {
                            slot.entries.swap_remove(i);
                        }
                        None => break,
                    }
                }
                slot.entries.push(entry);
            }
            None => {
                self.batch_misses.fetch_add(1, Ordering::Relaxed);
                while cache.map.len() >= BATCH_PLAN_SLOTS {
                    let victim = cache
                        .map
                        .iter()
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(k, _)| *k);
                    match victim {
                        Some(k) => {
                            cache.map.remove(&k);
                        }
                        None => break,
                    }
                }
                cache.map.insert(
                    class.class_hash(),
                    BatchPlanSlot {
                        entries: vec![entry],
                        last_used,
                    },
                );
            }
        }
        prep
    }

    /// Executes one prepared plan over several dense column blocks in a
    /// *single* engine run: the blocks are concatenated column-wise, the
    /// plan runs once over the combined `sum(cols)`-wide operand, and the
    /// output is split back into one matrix per input block.
    ///
    /// This is the batched submission path the serving layer coalesces
    /// concurrent requests through — every non-zero of `a` is walked once
    /// per *batch* instead of once per request, which is exactly the
    /// row-reuse argument batching makes.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if any block has
    /// `rows != a.cols()`.
    ///
    /// # Panics
    ///
    /// Panics if `prep` was classified for a different row count than
    /// `a.rows()`.
    pub fn execute_prepared_batch(
        &self,
        prep: &PreparedPlan,
        a: &CsrMatrix<f32>,
        blocks: &[&DenseMatrix<f32>],
    ) -> Result<Vec<DenseMatrix<f32>>, SparseFormatError> {
        self.execute_prepared_batch_fused(prep, a, blocks, &Epilogue::None)
    }

    /// [`execute_prepared_batch`](Self::execute_prepared_batch) with a
    /// fused [`Epilogue`] applied to the combined output before the
    /// split. Only column-uniform epilogues ([`Epilogue::None`],
    /// [`Epilogue::Relu`]) distribute over the per-block outputs; a bias
    /// epilogue validates against the *combined* width and is rejected
    /// otherwise — the GCN batched path applies biases per block instead.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if any block has
    /// `rows != a.cols()` or a bias epilogue does not span the combined
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `prep` was classified for a different row count than
    /// `a.rows()`.
    pub fn execute_prepared_batch_fused(
        &self,
        prep: &PreparedPlan,
        a: &CsrMatrix<f32>,
        blocks: &[&DenseMatrix<f32>],
        epi: &Epilogue,
    ) -> Result<Vec<DenseMatrix<f32>>, SparseFormatError> {
        for b in blocks {
            check_shapes(a, b)?;
        }
        match blocks {
            [] => Ok(Vec::new()),
            [only] => self
                .execute_prepared_fused(prep, a, only, epi)
                .map(|(out, _)| vec![out]),
            _ => {
                let total: usize = blocks.iter().map(|b| b.cols()).sum();
                if total == 0 {
                    return Ok(blocks
                        .iter()
                        .map(|_| DenseMatrix::zeros(a.rows(), 0))
                        .collect());
                }
                epi.validate(total)?;
                let combined = concat_col_blocks(&self.arena, blocks, a.cols(), total);
                let (out, _) = self.run(prep, a, &combined, epi);
                self.arena.put(combined.into_vec());
                let outs = split_col_blocks(&self.arena, &out, blocks, a.rows(), total);
                self.arena.put(out.into_vec());
                Ok(outs)
            }
        }
    }

    /// Current cache, dispatch, stealing, and arena counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            plan_cache_hits: self.hits.load(Ordering::Relaxed),
            plan_cache_misses: self.misses.load(Ordering::Relaxed),
            cached_plans: self.cache.lock().unwrap().map.len(),
            plan_cache_evictions: self.evictions.load(Ordering::Relaxed),
            workers: self.workers,
            gather_segments: self.gather.load(Ordering::Relaxed),
            stream_segments: self.stream.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_fails: self.steal_fails.load(Ordering::Relaxed),
            chunks_executed: self.chunks_executed.load(Ordering::Relaxed),
            arena_reuses: self.arena.reuses(),
            arena_misses: self.arena.misses(),
            gemm_panels: self.gemm_panels.load(Ordering::Relaxed),
            stripes_executed: self.stripes_executed.load(Ordering::Relaxed),
            kblocks: self.kblocks.load(Ordering::Relaxed),
            fastmath_runs: self.fastmath_runs.load(Ordering::Relaxed),
            fused_epilogues: self.fused_epilogues.load(Ordering::Relaxed),
            gemm_ns: self.gemm_ns.load(Ordering::Relaxed),
            tuner: TunerStats {
                explorations: self.tuner_explorations.load(Ordering::Relaxed),
                exploration_ns: self.tuner_exploration_ns.load(Ordering::Relaxed),
                excess_ns: self.tuner_excess_ns.load(Ordering::Relaxed),
                converged_plans: self.tuner_converged.load(Ordering::Relaxed),
                tuned_plans: self.tuner_plans.load(Ordering::Relaxed),
                warm_plans: self.tuner_warm.load(Ordering::Relaxed),
            },
            spgemm: SpgemmStats {
                rows: self.spgemm_rows.load(Ordering::Relaxed),
                accum_dense: self.spgemm_dense.load(Ordering::Relaxed),
                accum_hash: self.spgemm_hash.load(Ordering::Relaxed),
                accum_merge: self.spgemm_merge.load(Ordering::Relaxed),
                symbolic_ns: self.spgemm_symbolic_ns.load(Ordering::Relaxed),
                numeric_ns: self.spgemm_numeric_ns.load(Ordering::Relaxed),
            },
            batch_plan_hits: self.batch_hits.load(Ordering::Relaxed),
            batch_plan_misses: self.batch_misses.load(Ordering::Relaxed),
            batch_plan_rebuilds: self.batch_rebuilds.load(Ordering::Relaxed),
        }
    }

    /// Cumulative non-zeros executed per worker slot (length =
    /// [`workers`](Self::workers)) — the load distribution realized by
    /// the scheduler, whichever policy ran. The stealing benchmark
    /// derives per-worker busy fractions from this.
    pub fn worker_loads(&self) -> Vec<u64> {
        self.worker_nnz.lock().unwrap().clone()
    }

    /// Returns a result matrix's buffer to the engine's arena so a
    /// later execution of the same shape allocates nothing. Purely an
    /// optimization — dropping the matrix instead is always correct.
    pub fn recycle(&self, m: DenseMatrix<f32>) {
        self.arena.put(m.into_vec());
    }

    /// Leases a zeroed `rows × cols` dense matrix from the engine's
    /// arena — the hand-out pair of [`recycle`](Self::recycle). Callers
    /// assembling engine inputs every cycle (the serving layer stacks a
    /// feature matrix per packed window) reuse hot, already-faulted
    /// pages instead of paying a fresh allocation's page faults each
    /// time.
    pub fn lease_zeroed(&self, rows: usize, cols: usize) -> DenseMatrix<f32> {
        let buf = self.arena.take_zeroed(rows * cols);
        DenseMatrix::from_vec(rows, cols, buf).expect("arena buffer sized to rows x cols")
    }

    /// Drops every cached plan and pooled buffer and zeroes the
    /// hit/miss, dispatch, stealing, arena, and worker-load counters.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().unwrap();
        cache.map.clear();
        cache.tick = 0;
        drop(cache);
        let mut batch = self.batch_plans.lock().unwrap();
        batch.map.clear();
        batch.tick = 0;
        drop(batch);
        self.batch_hits.store(0, Ordering::Relaxed);
        self.batch_misses.store(0, Ordering::Relaxed);
        self.batch_rebuilds.store(0, Ordering::Relaxed);
        self.arena.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.gather.store(0, Ordering::Relaxed);
        self.stream.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.steal_fails.store(0, Ordering::Relaxed);
        self.chunks_executed.store(0, Ordering::Relaxed);
        self.gemm_panels.store(0, Ordering::Relaxed);
        self.stripes_executed.store(0, Ordering::Relaxed);
        self.kblocks.store(0, Ordering::Relaxed);
        self.fastmath_runs.store(0, Ordering::Relaxed);
        self.fused_epilogues.store(0, Ordering::Relaxed);
        self.gemm_ns.store(0, Ordering::Relaxed);
        self.tuner_explorations.store(0, Ordering::Relaxed);
        self.tuner_exploration_ns.store(0, Ordering::Relaxed);
        self.tuner_excess_ns.store(0, Ordering::Relaxed);
        self.tuner_converged.store(0, Ordering::Relaxed);
        self.tuner_plans.store(0, Ordering::Relaxed);
        self.tuner_warm.store(0, Ordering::Relaxed);
        self.spgemm_rows.store(0, Ordering::Relaxed);
        self.spgemm_dense.store(0, Ordering::Relaxed);
        self.spgemm_hash.store(0, Ordering::Relaxed);
        self.spgemm_merge.store(0, Ordering::Relaxed);
        self.spgemm_symbolic_ns.store(0, Ordering::Relaxed);
        self.spgemm_numeric_ns.store(0, Ordering::Relaxed);
        self.spgemm_slots.lock().unwrap().clear();
        self.worker_nnz
            .lock()
            .unwrap()
            .iter_mut()
            .for_each(|w| *w = 0);
    }

    /// Dispatches to the inline or pooled path. Shapes are already
    /// checked; a non-noop `epi` is already validated against `b.cols()`.
    fn run(
        &self,
        prep: &PreparedPlan,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        epi: &Epilogue,
    ) -> (DenseMatrix<f32>, WriteStats) {
        assert_eq!(
            prep.row_kind.len(),
            a.rows(),
            "prepared plan classified for a different row count"
        );
        let rows = a.rows();
        let dim = b.cols();
        let fuse = !epi.is_noop();
        if fuse {
            self.fused_epilogues.fetch_add(1, Ordering::Relaxed);
        }
        let logical = prep.plan.threads.len();
        if dim == 0 || logical == 0 {
            // Even an empty plan owes the epilogue its zero rows — a
            // bias changes them.
            let mut out = DenseMatrix::zeros(rows, dim);
            if fuse && dim > 0 {
                for row in out.as_mut_slice().chunks_mut(dim) {
                    epi.apply_row(row);
                }
            }
            return (out, prep.stats);
        }
        // Online auto-tuning: a plan with a tuner slot executes the
        // slot's arm instead of the static heuristics. Only *exploring*
        // runs are timed — once the slot converges the ticket is free
        // and steady-state runs pay zero measurement overhead.
        let ticket = match (&self.tuner, &prep.tuner) {
            (Some(_), Some(slot)) => Some(slot.begin()),
            _ => None,
        };
        let timer = ticket
            .as_ref()
            .filter(|t| t.explore)
            .map(|_| std::time::Instant::now());
        let rp = match &ticket {
            Some(t) => self.resolve_arm(t.arm, dim),
            None => self.data_path.resolve_fast(dim, self.fast_math),
        };
        if rp.fastmath {
            self.fastmath_runs.fetch_add(1, Ordering::Relaxed);
        }
        if rp.kind == PathKind::Vector {
            let (gather, stream) = prep.dispatch;
            self.gather.fetch_add(gather as u64, Ordering::Relaxed);
            self.stream.fetch_add(stream as u64, Ordering::Relaxed);
        }
        let cols32 = prep.cols32.as_ref().map(AlignedVec::as_slice);
        let eff_workers = self.workers.min(logical);
        let use_striping = match &ticket {
            Some(t) => t.arm.sched == SchedPolicy::ColumnStriped,
            None => self.selects_striping(prep, dim),
        };
        let use_stealing = match &ticket {
            Some(t) => t.arm.sched == SchedPolicy::Stealing,
            None => self.selects_stealing(prep),
        };
        let mut out = self.arena.take_zeroed(rows * dim);
        // The striped path applies the deferred epilogue share per
        // stripe; every other path leaves it to the pass below.
        let mut epilogue_done = false;
        if eff_workers <= 1 {
            run_inline(prep, a, b, dim, &rp, cols32, epi, &mut out);
            self.add_worker_load(0, *prep.thread_nnz_ends.last().unwrap_or(&0) as u64);
        } else if use_striping {
            // Hardware clamp: every stripe re-walks the full index/value
            // stream, so stripes beyond the machine's actual parallelism
            // are pure re-walk overhead with nobody to run them. An
            // engine configured with more workers than
            // [`crate::default_workers`] reports (the pool serializes
            // them anyway) stripes only as wide as the hardware; at one
            // hardware thread that is a single full-width stripe — still
            // the right wide-dim path, because it skips the pooled
            // executor's strip folding and serial carry replay. An
            // engine with a private pool was sized explicitly by its
            // owner, so its own width *is* the clamp.
            let hw = if self.pool.is_private() {
                self.workers
            } else {
                crate::spmm::default_workers()
            };
            let stripe_workers = eff_workers.min(hw).max(1);
            let stripes = run_striped(
                prep,
                a,
                b,
                dim,
                stripe_workers,
                &rp,
                cols32,
                epi,
                &self.arena,
                self.pool.get(),
                &mut out,
            );
            self.stripes_executed.fetch_add(stripes, Ordering::Relaxed);
            epilogue_done = true;
            // Every stripe walks the full plan: charge each active
            // worker slot one full nnz sweep per stripe it ran.
            let total_nnz = *prep.thread_nnz_ends.last().unwrap_or(&0) as u64;
            let mut loads = self.worker_nnz.lock().unwrap();
            for s in 0..stripes as usize {
                loads[s % stripe_workers] += total_nnz;
            }
        } else if use_stealing {
            let target = (eff_workers * STEAL_CHUNKS_PER_WORKER).min(logical);
            let chunks = prep.chunk_descriptors(target);
            let outcome = run_stealing(
                prep,
                a,
                b,
                dim,
                eff_workers,
                &rp,
                cols32,
                epi,
                &chunks,
                self.pool.get(),
                &mut out,
            );
            self.steals.fetch_add(outcome.steals, Ordering::Relaxed);
            self.steal_fails
                .fetch_add(outcome.steal_fails, Ordering::Relaxed);
            self.chunks_executed
                .fetch_add(outcome.chunks, Ordering::Relaxed);
            let mut loads = self.worker_nnz.lock().unwrap();
            for (slot, nnz) in outcome.worker_nnz.iter().enumerate() {
                loads[slot] += nnz;
            }
        } else {
            run_pooled(
                prep,
                a,
                b,
                dim,
                eff_workers,
                &rp,
                cols32,
                epi,
                &self.arena,
                self.pool.get(),
                &mut out,
            );
            // The static span nnz per worker is a plan property.
            let per_worker = logical.div_ceil(eff_workers);
            let mut lo = 0usize;
            let mut loads = self.worker_nnz.lock().unwrap();
            for (w, load) in loads.iter_mut().enumerate().take(eff_workers) {
                let hi_t = ((w + 1) * per_worker).min(logical);
                let hi = prep.thread_nnz_ends[hi_t - 1];
                *load += (hi - lo) as u64;
                lo = hi;
            }
        }
        // Serial-replay epilogue: rows not finalized at store time
        // (shared, carry-receiving, untouched) hold their final SpMM
        // value only now — apply the epilogue exactly once per row here
        // (the striped path already did, stripe by stripe).
        if fuse && !epilogue_done {
            for &row in &prep.deferred_rows {
                epi.apply_row(&mut out[row as usize * dim..][..dim]);
            }
        }
        // Feed the explorer its measurement, file the verdict when this
        // observation was the converging one.
        if let (Some(ticket), Some(started)) = (&ticket, timer) {
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.tuner_explorations.fetch_add(1, Ordering::Relaxed);
            self.tuner_exploration_ns.fetch_add(ns, Ordering::Relaxed);
            if let Some(slot) = &prep.tuner {
                let obs = slot.observe(ticket.idx, ns);
                self.tuner_excess_ns
                    .fetch_add(obs.excess_ns, Ordering::Relaxed);
                if let Some(arm) = obs.newly_converged {
                    self.tuner_converged.fetch_add(1, Ordering::Relaxed);
                    if let Some(table) = &self.tuner {
                        table.record(slot.fingerprint(), arm);
                    }
                }
            }
        }
        let out = DenseMatrix::from_vec(rows, dim, out)
            .expect("output buffer has exactly rows*dim elements");
        (out, prep.stats)
    }

    fn add_worker_load(&self, slot: usize, nnz: u64) {
        self.worker_nnz.lock().unwrap()[slot] += nnz;
    }
}

impl std::fmt::Debug for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecEngine")
            .field("workers", &self.workers)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Row-tile height of the single-column interleave/split fast lane: a
/// tile of `64 rows x total cols x 4 B` stays L1-resident while every
/// source (or destination) column streams through it, so each output
/// cache line is filled while hot instead of being re-fetched per column.
const INTERLEAVE_TILE_ROWS: usize = 64;

/// Column-group width of the interleave/split micro-kernel. Eight
/// single-column blocks are transposed together per pass: each output
/// row contributes one contiguous 8-float (32 B) store instead of eight
/// isolated scalar stores, and the fixed-size array references let the
/// compiler drop every bounds check in the hot loop.
const INTERLEAVE_GROUP: usize = 8;

/// Transposes `srcs` (each a full column of length `rows`) into the
/// row-major `rows x srcs.len()` buffer `dst`, tiled so the destination
/// stays L1-resident across column groups.
fn interleave_unit_cols(dst: &mut [f32], srcs: &[&[f32]], rows: usize) {
    let total = srcs.len();
    for start in (0..rows).step_by(INTERLEAVE_TILE_ROWS) {
        let n = INTERLEAVE_TILE_ROWS.min(rows - start);
        let tile = &mut dst[start * total..(start + n) * total];
        let mut j = 0;
        while j + INTERLEAVE_GROUP <= total {
            let cols: [&[f32]; INTERLEAVE_GROUP] =
                std::array::from_fn(|i| &srcs[j + i][start..start + n]);
            for r in 0..n {
                let base = r * total + j;
                let out: &mut [f32; INTERLEAVE_GROUP] = (&mut tile[base..base + INTERLEAVE_GROUP])
                    .try_into()
                    .unwrap();
                for (o, c) in out.iter_mut().zip(&cols) {
                    *o = c[r];
                }
            }
            j += INTERLEAVE_GROUP;
        }
        for (jj, src) in srcs[j..].iter().enumerate() {
            let src = &src[start..start + n];
            for (d, &v) in tile[j + jj..].iter_mut().step_by(total).zip(src) {
                *d = v;
            }
        }
    }
}

/// Inverse of [`interleave_unit_cols`]: scatters each column of the
/// row-major `rows x outs.len()` buffer `src` into its own flat column.
fn deinterleave_unit_cols(src: &[f32], outs: &mut [Vec<f32>], rows: usize) {
    let total = outs.len();
    for start in (0..rows).step_by(INTERLEAVE_TILE_ROWS) {
        let n = INTERLEAVE_TILE_ROWS.min(rows - start);
        let tile = &src[start * total..(start + n) * total];
        let mut chunks = outs.chunks_exact_mut(INTERLEAVE_GROUP);
        let mut j = 0;
        for group in chunks.by_ref() {
            let mut bufs = group.iter_mut();
            let mut cols: [&mut [f32]; INTERLEAVE_GROUP] = std::array::from_fn(|_| {
                &mut bufs.next().expect("chunk has 8 bufs")[start..start + n]
            });
            for r in 0..n {
                let base = r * total + j;
                let inp: &[f32; INTERLEAVE_GROUP] =
                    (&tile[base..base + INTERLEAVE_GROUP]).try_into().unwrap();
                for (c, &v) in cols.iter_mut().zip(inp) {
                    c[r] = v;
                }
            }
            j += INTERLEAVE_GROUP;
        }
        for (jj, buf) in chunks.into_remainder().iter_mut().enumerate() {
            let dst = &mut buf[start..start + n];
            for (d, &v) in dst.iter_mut().zip(tile[j + jj..].iter().step_by(total)) {
                *d = v;
            }
        }
    }
}

/// Column-concatenates `blocks` into one `rows x total` matrix.
///
/// The batch path's overhead is exactly this copy plus
/// [`split_col_blocks`], so both are tuned for the serving layer's
/// dominant shape — many single-column blocks — with the tiled 8-wide
/// transpose micro-kernel above; mixed-width batches take a row-major
/// `copy_from_slice` walk instead.
fn concat_col_blocks(
    arena: &BufferArena,
    blocks: &[&DenseMatrix<f32>],
    rows: usize,
    total: usize,
) -> DenseMatrix<f32> {
    let buf = arena.take_zeroed(rows * total);
    let mut combined =
        DenseMatrix::from_vec(rows, total, buf).expect("arena buffer sized to rows x total");
    let dst = combined.as_mut_slice();
    if blocks.iter().all(|b| b.cols() == 1) {
        let srcs: Vec<&[f32]> = blocks.iter().map(|b| b.as_slice()).collect();
        interleave_unit_cols(dst, &srcs, rows);
    } else {
        let srcs: Vec<(&[f32], usize)> = blocks.iter().map(|b| (b.as_slice(), b.cols())).collect();
        for (r, drow) in dst.chunks_exact_mut(total).enumerate() {
            let mut off = 0;
            for &(src, k) in &srcs {
                drow[off..off + k].copy_from_slice(&src[r * k..r * k + k]);
                off += k;
            }
        }
    }
    combined
}

/// Inverse of [`concat_col_blocks`]: splits the batched output back into
/// one matrix per input block, in order.
fn split_col_blocks(
    arena: &BufferArena,
    out: &DenseMatrix<f32>,
    blocks: &[&DenseMatrix<f32>],
    rows: usize,
    total: usize,
) -> Vec<DenseMatrix<f32>> {
    let src = out.as_slice();
    let mut bufs: Vec<Vec<f32>> = blocks
        .iter()
        .map(|b| arena.take_zeroed(rows * b.cols()))
        .collect();
    if blocks.iter().all(|b| b.cols() == 1) {
        deinterleave_unit_cols(src, &mut bufs, rows);
    } else {
        for (r, srow) in src.chunks_exact(total).enumerate() {
            let mut off = 0;
            for (buf, b) in bufs.iter_mut().zip(blocks) {
                let k = b.cols();
                buf[r * k..r * k + k].copy_from_slice(&srow[off..off + k]);
                off += k;
            }
        }
    }
    bufs.into_iter()
        .zip(blocks)
        .map(|(buf, b)| {
            DenseMatrix::from_vec(rows, b.cols(), buf).expect("buffer sized to rows x cols")
        })
        .collect()
}

/// Single-worker path: no pool, no atomics anywhere. Accumulation order
/// equals [`crate::executor::execute_sequential`]'s, so the result is
/// bit-identical to the oracle. Writes into the caller's zeroed `out`.
/// Fusable rows (`Direct`, carry-free) get `epi` at store time; the
/// engine applies it to all remaining rows after this returns.
#[allow(clippy::too_many_arguments)]
fn run_inline(
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dim: usize,
    rp: &ResolvedPath,
    cols32: Option<&[u32]>,
    epi: &Epilogue,
    out: &mut [f32],
) {
    let fuse = !epi.is_noop();
    // All-direct plans (row-aligned batch plans above all) skip the
    // per-segment flush dispatch entirely when the output width has a
    // fixed-width microkernel: at mega-batch row counts the dispatch
    // overhead itself is the dominant cost. The scalar path keeps the
    // generic loop — it is the correctness oracle.
    if prep.all_direct && !fuse && rp.kind != PathKind::Scalar && matches!(dim, 1 | 2 | 4 | 8) {
        match cols32 {
            Some(cols) => run_inline_direct(prep, cols, a.values(), b, dim, out),
            None => run_inline_direct(prep, a.col_indices(), a.values(), b, dim, out),
        }
        return;
    }
    let mut acc = vec![0.0f32; dim];
    // Carries stay in one flat buffer — a merge-path plan at the paper's
    // 1024-thread floor produces thousands of carry segments per run,
    // and a `Vec` allocation for each was measurable.
    let mut carry_rows: Vec<usize> = Vec::new();
    let mut carry_data: Vec<f32> = Vec::new();
    for tp in &prep.plan.threads {
        for (s, seg) in tp.segments.iter().enumerate() {
            if seg.is_empty() {
                continue;
            }
            prefetch_segment_rows(rp, tp.segments.get(s + 1), a, cols32, b, 0);
            match seg.flush {
                Flush::Regular => {
                    let dst = &mut out[seg.row * dim..][..dim];
                    accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, dst);
                    if fuse && prep.fused_ok[seg.row] {
                        epi.apply_row(dst);
                    }
                }
                Flush::Atomic => {
                    accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, &mut acc);
                    for (dst, &v) in out[seg.row * dim..][..dim].iter_mut().zip(&acc) {
                        *dst += v;
                    }
                }
                Flush::Carry => {
                    accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, &mut acc);
                    carry_rows.push(seg.row);
                    carry_data.extend_from_slice(&acc);
                }
            }
        }
    }
    for (i, &row) in carry_rows.iter().enumerate() {
        let src = &carry_data[i * dim..][..dim];
        for (dst, &v) in out[row * dim..][..dim].iter_mut().zip(src) {
            *dst += v;
        }
    }
}

/// Tight single-worker loop for all-direct plans: every non-empty
/// segment is one whole row's flat fold, stored once. Dispatches the
/// runtime width to a fixed-width microkernel so the accumulators live
/// in registers and the inner loop carries no per-segment branch at
/// all. Per output element the fold is the same ascending-`k` sum every
/// other data path computes, so the result stays bit-identical to the
/// sequential oracle.
fn run_inline_direct<I: ColIdx>(
    prep: &PreparedPlan,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    dim: usize,
    out: &mut [f32],
) {
    match dim {
        1 => direct_rows_fixed::<1, I>(prep, cols, vals, b, out),
        2 => direct_rows_fixed::<2, I>(prep, cols, vals, b, out),
        4 => direct_rows_fixed::<4, I>(prep, cols, vals, b, out),
        8 => direct_rows_fixed::<8, I>(prep, cols, vals, b, out),
        _ => unreachable!("run_inline_direct called for unspecialized dim {dim}"),
    }
}

/// The fixed-width row fold behind [`run_inline_direct`]. `D` equals
/// the dense operand's column count; the caller guarantees it.
fn direct_rows_fixed<const D: usize, I: ColIdx>(
    prep: &PreparedPlan,
    cols: &[I],
    vals: &[f32],
    b: &DenseMatrix<f32>,
    out: &mut [f32],
) {
    // `run_inline_direct` is only reached when `b.cols() == D`, so row
    // `c` of `b` is the flat slice `[c * D, c * D + D)` — indexing the
    // backing storage directly (and zipping vals with cols) keeps the
    // hot loop to one bounds check per non-zero.
    let bflat = b.as_slice();
    for tp in &prep.plan.threads {
        for seg in &tp.segments {
            if seg.is_empty() {
                continue;
            }
            let mut acc = [0.0f32; D];
            let vs = &vals[seg.nz_start..seg.nz_end];
            let cs = &cols[seg.nz_start..seg.nz_end];
            for (&v, c) in vs.iter().zip(cs) {
                let row = &bflat[c.to_usize() * D..][..D];
                for d in 0..D {
                    acc[d] += v * row[d];
                }
            }
            out[seg.row * D..][..D].copy_from_slice(&acc);
        }
    }
}

/// Multi-worker static path: logical threads are partitioned into
/// `eff_workers` contiguous, equal-size ranges (merge-path plans are
/// equal-work by construction, so a static partition balances). Direct
/// rows are written through per-worker contiguous `&mut` spans of `out`;
/// shared rows accumulate into per-worker private strips folded after
/// the join; carries are added serially after the join in logical
/// (thread, segment) order, matching the baseline executor. No atomics
/// anywhere. Writes into the caller's zeroed `out`.
#[allow(clippy::too_many_arguments)]
fn run_pooled(
    prep: &PreparedPlan,
    a: &CsrMatrix<f32>,
    b: &DenseMatrix<f32>,
    dim: usize,
    eff_workers: usize,
    rp: &ResolvedPath,
    cols32: Option<&[u32]>,
    epi: &Epilogue,
    arena: &BufferArena,
    pool: &WorkerPool,
    out: &mut [f32],
) {
    let fuse = !epi.is_noop();
    let logical = prep.plan.threads.len();
    let per_worker = logical.div_ceil(eff_workers);
    let shared = prep.shared_rows.len();
    let rows = prep.row_kind.len();

    // Worker row boundaries of monotonic plans: `bounds[w]` = first row
    // any thread of worker `w` or later writes in the parallel phase
    // (computed back-to-front so workers with no writes inherit the next
    // boundary), with `bounds[0]` widened to 0 so leading never-written
    // rows land somewhere. All of worker `w`'s writes target rows in
    // `bounds[w]..=bounds[w + 1]` — the closed upper end is the boundary
    // row a partial last segment may share with the next worker.
    let bounds: Option<Vec<usize>> = prep.write_rows_monotonic.then(|| {
        let mut bounds = vec![rows; eff_workers + 1];
        for w in (0..eff_workers).rev() {
            let hi = ((w + 1) * per_worker).min(logical);
            bounds[w] = (w * per_worker..hi)
                .map(|t| prep.thread_first_write_row[t])
                .find(|&r| r != u32::MAX)
                .map_or(bounds[w + 1], |r| r as usize);
        }
        bounds[0] = 0;
        bounds
    });

    // Shared rows accumulate into per-worker *private* f32 strips carved
    // out of one arena buffer, folded into `out` serially after the
    // join. This replaces the old atomic side buffer: the paper's
    // 1024-logical-thread floor yields thousands of boundary segments
    // per plan, and a per-element CAS loop for each dominated the static
    // path's multi-worker overhead. Plain stores plus one deterministic
    // fold also make static runs reproducible for a fixed worker count.
    // Monotonic plans give each worker a contiguous shared-slot range
    // (`shared_rows` ascends with the row order), with consecutive
    // workers overlapping by at most the boundary slot — so the strips
    // total about `shared × dim`, not `eff_workers × shared × dim`.
    let slot_ranges: Vec<(usize, usize)> = match &bounds {
        Some(bounds) => (0..eff_workers)
            .map(|w| {
                let lo = prep
                    .shared_rows
                    .partition_point(|&r| (r as usize) < bounds[w]);
                let hi = prep
                    .shared_rows
                    .partition_point(|&r| (r as usize) <= bounds[w + 1]);
                (lo, hi.max(lo))
            })
            .collect(),
        None => vec![(0, shared); eff_workers],
    };
    let total_strip: usize = slot_ranges.iter().map(|&(lo, hi)| (hi - lo) * dim).sum();
    let mut shared_strips = arena.take_zeroed(total_strip);
    let mut strips: Vec<(usize, &mut [f32])> = Vec::with_capacity(eff_workers);
    {
        let mut rest: &mut [f32] = &mut shared_strips;
        for &(lo, hi) in &slot_ranges {
            let (head, tail) = rest.split_at_mut((hi - lo) * dim);
            strips.push((lo, head));
            rest = tail;
        }
    }
    // Each worker's carries live in one flat buffer (no per-carry
    // allocation); the keys record the `(thread, segment)` replay order.
    type CarryGroup = (Vec<(usize, usize, usize)>, Vec<f32>);
    let all_carries = Mutex::new(Vec::<CarryGroup>::new());

    // Route each worker's direct rows to a view of `out` it owns
    // exclusively. Monotonic plans (every real kernel) get one contiguous
    // `split_at_mut` span per worker: a row written by two workers has at
    // least two parallel-phase write segments and is therefore classified
    // `Shared`, never `Direct`, so every worker's `Direct` rows lie
    // strictly inside its span boundaries. Untouched rows inside a span
    // are simply never stored to. Non-monotonic (hand-built) plans fall
    // back to a per-row slice map; disjointness there comes from
    // `chunks_mut`.
    enum RowRouter<'r> {
        Span { base: usize, span: &'r mut [f32] },
        Map(HashMap<u32, &'r mut [f32]>),
    }
    impl RowRouter<'_> {
        #[inline]
        fn row_mut(&mut self, row: usize, dim: usize) -> &mut [f32] {
            match self {
                RowRouter::Span { base, span } => &mut span[(row - *base) * dim..][..dim],
                RowRouter::Map(m) => m
                    .get_mut(&(row as u32))
                    .expect("direct row slice routed to owner worker"),
            }
        }
    }
    let mut routers: Vec<RowRouter<'_>> = Vec::with_capacity(eff_workers);
    if let Some(bounds) = &bounds {
        let mut rest: &mut [f32] = out;
        let mut start = 0usize;
        for w in 0..eff_workers {
            let end = bounds[w + 1].max(start);
            let (span, tail) = rest.split_at_mut((end - start) * dim);
            routers.push(RowRouter::Span { base: start, span });
            rest = tail;
            start = end;
        }
    } else {
        let mut maps: Vec<HashMap<u32, &mut [f32]>> =
            (0..eff_workers).map(|_| HashMap::new()).collect();
        for (row, chunk) in out.chunks_mut(dim).enumerate() {
            if let RowKind::Direct { owner } = prep.row_kind[row] {
                maps[owner as usize / per_worker].insert(row as u32, chunk);
            }
        }
        routers.extend(maps.into_iter().map(RowRouter::Map));
    }

    let jobs: Vec<ScopedJob<'_>> = routers
        .into_iter()
        .zip(strips)
        .enumerate()
        .map(|(w, (mut router, (slot_base, strip)))| {
            let all_carries = &all_carries;
            let epi = &*epi;
            Box::new(move || {
                let mut acc = vec![0.0f32; dim];
                let mut carry_keys: Vec<(usize, usize, usize)> = Vec::new();
                let mut carry_data: Vec<f32> = Vec::new();
                let hi = ((w + 1) * per_worker).min(logical);
                for t in w * per_worker..hi {
                    for (s, seg) in prep.plan.threads[t].segments.iter().enumerate() {
                        if seg.is_empty() {
                            continue;
                        }
                        prefetch_segment_rows(
                            rp,
                            prep.plan.threads[t].segments.get(s + 1),
                            a,
                            cols32,
                            b,
                            0,
                        );
                        match seg.flush {
                            Flush::Regular => match prep.row_kind[seg.row] {
                                RowKind::Direct { .. } => {
                                    let dst = router.row_mut(seg.row, dim);
                                    accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, dst);
                                    if fuse && prep.fused_ok[seg.row] {
                                        epi.apply_row(dst);
                                    }
                                }
                                RowKind::Shared { side: slot } => {
                                    accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, &mut acc);
                                    let base = (slot as usize - slot_base) * dim;
                                    for (dst, &v) in strip[base..base + dim].iter_mut().zip(&acc) {
                                        *dst += v;
                                    }
                                }
                                RowKind::Untouched => {
                                    unreachable!("regular write classifies its row as touched")
                                }
                            },
                            Flush::Atomic => {
                                let RowKind::Shared { side: slot } = prep.row_kind[seg.row] else {
                                    unreachable!("atomic update classifies its row as shared")
                                };
                                accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, &mut acc);
                                let base = (slot as usize - slot_base) * dim;
                                for (dst, &v) in strip[base..base + dim].iter_mut().zip(&acc) {
                                    *dst += v;
                                }
                            }
                            Flush::Carry => {
                                accumulate_segment_dispatch(rp, seg, a, cols32, b, 0, &mut acc);
                                carry_keys.push((t, s, seg.row));
                                carry_data.extend_from_slice(&acc);
                            }
                        }
                    }
                }
                if !carry_keys.is_empty() {
                    all_carries.lock().unwrap().push((carry_keys, carry_data));
                }
            }) as ScopedJob<'_>
        })
        .collect();
    pool.scope_run(jobs);

    // Fold the per-worker shared-row strips into the plain output, in
    // ascending worker order — a fixed association, so repeated static
    // runs at the same worker count are bit-identical. Each worker's
    // strip covers only its slot range; a boundary slot shared by two
    // consecutive workers is simply folded twice.
    {
        let mut strip_off = 0usize;
        for &(lo, hi) in &slot_ranges {
            for slot in lo..hi {
                let row = prep.shared_rows[slot] as usize;
                let dst = &mut out[row * dim..][..dim];
                let src = &shared_strips[strip_off + (slot - lo) * dim..][..dim];
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d += v;
                }
            }
            strip_off += (hi - lo) * dim;
        }
    }

    // Serial fix-up phase in deterministic (thread, segment) order.
    let groups = all_carries.into_inner().unwrap();
    let mut replay: Vec<(usize, usize, usize, &[f32])> = groups
        .iter()
        .flat_map(|(keys, data)| {
            keys.iter()
                .enumerate()
                .map(move |(i, &(t, s, row))| (t, s, row, &data[i * dim..][..dim]))
        })
        .collect();
    replay.sort_unstable_by_key(|&(t, s, _, _)| (t, s));
    for (_, _, row, carry) in replay {
        for (dst, &v) in out[row * dim..][..dim].iter_mut().zip(carry) {
            *dst += v;
        }
    }
    arena.put(shared_strips);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_sequential;
    use crate::plan::{Segment, ThreadPlan};

    fn seg(row: usize, nz_start: usize, nz_end: usize, flush: Flush) -> Segment {
        Segment {
            row,
            nz_start,
            nz_end,
            flush,
        }
    }

    fn plan(threads: Vec<Vec<Segment>>) -> KernelPlan {
        KernelPlan {
            threads: threads
                .into_iter()
                .map(|segments| ThreadPlan { segments })
                .collect(),
        }
    }

    fn small() -> (CsrMatrix<f32>, DenseMatrix<f32>) {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
            ],
        )
        .unwrap();
        let b = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        (a, b)
    }

    fn mixed_plan() -> KernelPlan {
        plan(vec![
            vec![seg(0, 0, 1, Flush::Atomic)],
            vec![seg(0, 1, 2, Flush::Atomic), seg(1, 2, 3, Flush::Regular)],
            vec![seg(2, 3, 5, Flush::Carry)],
        ])
    }

    #[test]
    fn batch_plan_cache_hits_rebuilds_and_misses() {
        use crate::spmm::BatchMergeSpmm;
        let engine = ExecEngine::new(1);
        let kernel = BatchMergeSpmm::with_threads(4);
        let (a, _) = small();
        let class = |hashes: [u64; 2]| {
            BatchShapeClass::from_graphs(hashes.iter().map(|&h| (3usize, 5usize, h)))
        };
        // First window of a composition: miss.
        let c1 = class([1, 2]);
        let p1 = engine.plan_batch_cached(&kernel, &a, 8, &c1);
        assert_eq!(engine.stats().batch_plan_misses, 1);
        // Same composition again: hit, same Arc.
        let p2 = engine.plan_batch_cached(&kernel, &a, 8, &c1);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(engine.stats().batch_plan_hits, 1);
        // Same class, different structure: rebuild in place, no new slot.
        let c2 = class([1, 3]);
        assert_eq!(c1.class_hash(), c2.class_hash());
        let p3 = engine.plan_batch_cached(&kernel, &a, 8, &c2);
        assert!(!Arc::ptr_eq(&p1, &p3));
        let stats = engine.stats();
        assert_eq!(stats.batch_plan_rebuilds, 1);
        assert_eq!(stats.batch_plan_misses, 1, "rebuild is not a miss");
        // The slot now serves the new fingerprint...
        let p4 = engine.plan_batch_cached(&kernel, &a, 8, &c2);
        assert!(Arc::ptr_eq(&p3, &p4));
        // ...and still serves the previous one: the class keeps a
        // working set, so cyclic window compositions hit, not rebuild.
        let p5 = engine.plan_batch_cached(&kernel, &a, 8, &c1);
        assert!(Arc::ptr_eq(&p1, &p5));
        let stats = engine.stats();
        assert_eq!(stats.batch_plan_hits, 3);
        assert_eq!(stats.batch_plan_rebuilds, 1);
        // Cycling through more compositions than the per-class bound
        // evicts intra-slot LRU without ever growing the slot count.
        for extra in 0..(BATCH_PLANS_PER_CLASS as u64 + 2) {
            engine.plan_batch_cached(&kernel, &a, 8, &class([1, 100 + extra]));
        }
        assert_eq!(engine.stats().batch_plan_misses, 1, "one class, one slot");
        engine.clear_cache();
        assert_eq!(engine.stats().batch_plan_hits, 0);
    }

    #[test]
    fn classification_finds_direct_shared_untouched() {
        let (a, _) = small();
        let p = mixed_plan();
        p.validate(&a).unwrap();
        let prep = PreparedPlan::new(p, a.rows());
        assert_eq!(prep.row_kind[0], RowKind::Shared { side: 0 });
        assert_eq!(prep.row_kind[1], RowKind::Direct { owner: 1 });
        // Row 2 only receives a carry — no parallel-phase writes at all.
        assert_eq!(prep.row_kind[2], RowKind::Untouched);
        assert_eq!(prep.shared_rows, vec![0]);
        assert_eq!(prep.direct_row_count(), 1);
        assert_eq!(prep.shared_row_count(), 1);
    }

    #[test]
    fn expected_stats_match_sequential_executor() {
        let (a, b) = small();
        let p = mixed_plan();
        let (_, seq_stats) = execute_sequential(&p, &a, &b).unwrap();
        let prep = PreparedPlan::new(p, a.rows());
        assert_eq!(prep.expected_stats(), seq_stats);
    }

    #[test]
    fn engine_matches_sequential_on_mixed_plan() {
        let (a, b) = small();
        let p = mixed_plan();
        let (seq, seq_stats) = execute_sequential(&p, &a, &b).unwrap();
        for workers in [1, 2, 4, 16] {
            let engine = ExecEngine::new(workers);
            let (out, stats) = engine.execute(&p, &a, &b).unwrap();
            assert!(out.approx_eq(&seq, 1e-5).unwrap(), "workers={workers}");
            assert_eq!(stats, seq_stats, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_is_bit_identical_to_sequential() {
        let a = crate::spmm::test_support::random_matrix(64, 64, 400, 11);
        let b = crate::spmm::test_support::random_dense(64, 19, 12);
        let p = crate::MergePathSpmm::with_threads(13).plan(&a, 19);
        let (seq, _) = execute_sequential(&p, &a, &b).unwrap();
        let (out, _) = ExecEngine::new(1).execute(&p, &a, &b).unwrap();
        assert_eq!(out.max_abs_diff(&seq).unwrap(), 0.0);
    }

    #[test]
    fn every_data_path_is_bit_identical_through_the_engine() {
        let a = crate::spmm::test_support::random_matrix(48, 48, 300, 3);
        let kernel = crate::MergePathSpmm::with_threads(9);
        for dim in [1, 3, 8, 16, 17, 32, 33] {
            let b = crate::spmm::test_support::random_dense(48, dim, 4);
            let p = kernel.plan(&a, dim);
            let (seq, _) = execute_sequential(&p, &a, &b).unwrap();
            for path in [
                DataPath::Auto,
                DataPath::Scalar,
                DataPath::Tiled,
                DataPath::Vector,
            ] {
                let engine = ExecEngine::with_data_path(1, path);
                let (out, _) = engine.execute(&p, &a, &b).unwrap();
                assert_eq!(
                    out.max_abs_diff(&seq).unwrap(),
                    0.0,
                    "path={path:?} dim={dim}"
                );
                // Packed-index route (the cached path) must agree too.
                let (packed, _) = engine
                    .execute_prepared(&PreparedPlan::for_matrix(p.clone(), &a), &a, &b)
                    .unwrap();
                assert_eq!(
                    packed.max_abs_diff(&seq).unwrap(),
                    0.0,
                    "packed path={path:?} dim={dim}"
                );
            }
        }
    }

    #[test]
    fn dispatch_counters_record_gather_stream_split() {
        let a = crate::spmm::test_support::random_matrix(48, 48, 300, 7);
        let b = crate::spmm::test_support::random_dense(48, 16, 8);
        let kernel = crate::MergePathSpmm::with_threads(9);
        let p = kernel.plan(&a, 16);
        let prep = PreparedPlan::for_matrix(p.clone(), &a);
        let (gather, stream) = prep.dispatch_profile();
        assert_eq!(prep.dispatch_profile(), p.dispatch_profile(GATHER_MAX_NNZ));
        assert!(gather + stream > 0);
        assert!(prep.has_packed_indices());

        let engine = ExecEngine::with_data_path(1, DataPath::Vector);
        engine.execute_prepared(&prep, &a, &b).unwrap();
        engine.execute_prepared(&prep, &a, &b).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.gather_segments, 2 * gather as u64);
        assert_eq!(stats.stream_segments, 2 * stream as u64);

        // The tiled path does not go through the dispatcher.
        let tiled = ExecEngine::with_data_path(1, DataPath::Tiled);
        tiled.execute_prepared(&prep, &a, &b).unwrap();
        assert_eq!(tiled.stats().gather_segments, 0);
        assert_eq!(tiled.stats().stream_segments, 0);
        engine.clear_cache();
        assert_eq!(engine.stats().gather_segments, 0);
    }

    #[test]
    fn plan_cached_warms_the_cache_for_execute_prepared() {
        let (a, b) = small();
        let engine = ExecEngine::new(2);
        let kernel = crate::MergePathSpmm::with_threads(3);
        let prep = engine.plan_cached(&kernel, &a, b.cols(), 0);
        assert!(prep.has_packed_indices());
        assert_eq!(engine.stats().plan_cache_misses, 1);
        // Same key: served from cache.
        let again = engine.plan_cached(&kernel, &a, b.cols(), 0);
        assert_eq!(engine.stats().plan_cache_hits, 1);
        assert!(Arc::ptr_eq(&prep, &again));
        // And spmm_cached reuses the same entry.
        engine.spmm_cached(&kernel, &a, &b, 0).unwrap();
        assert_eq!(engine.stats().plan_cache_hits, 2);
    }

    #[test]
    fn zero_dimension_and_empty_plan() {
        let (a, _) = small();
        let b = DenseMatrix::<f32>::zeros(3, 0);
        let engine = ExecEngine::new(4);
        let (out, _) = engine.execute(&mixed_plan(), &a, &b).unwrap();
        assert_eq!(out.cols(), 0);
        let empty = plan(vec![]);
        let b = DenseMatrix::<f32>::zeros(3, 2);
        let (out, stats) = engine.execute(&empty, &a, &b).unwrap();
        assert_eq!(out.rows(), 3);
        assert_eq!(stats, WriteStats::default());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let (a, _) = small();
        let bad_b = DenseMatrix::<f32>::zeros(5, 2);
        assert!(ExecEngine::new(2)
            .execute(&mixed_plan(), &a, &bad_b)
            .is_err());
        assert!(ExecEngine::new(2)
            .spmm_cached(&crate::MergePathSpmm::new(), &a, &bad_b, 0)
            .is_err());
    }

    #[test]
    fn mutated_matrix_misses_cache_via_shape_tripwire() {
        let (a, b) = small();
        let engine = ExecEngine::new(2);
        let kernel = crate::MergePathSpmm::with_threads(3);
        engine.spmm_cached(&kernel, &a, &b, 7).unwrap();
        // Same epoch, but the matrix gained a non-zero: the (rows, cols,
        // nnz) component of the key must force a re-plan.
        let mutated = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (2, 2, 6.0),
            ],
        )
        .unwrap();
        engine.spmm_cached(&kernel, &mutated, &b, 7).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_misses, 2);
        assert_eq!(stats.plan_cache_hits, 0);
    }

    #[test]
    fn distinct_kernel_configs_get_distinct_cache_entries() {
        let (a, b) = small();
        let engine = ExecEngine::new(2);
        engine
            .spmm_cached(&crate::MergePathSpmm::with_threads(2), &a, &b, 0)
            .unwrap();
        engine
            .spmm_cached(&crate::MergePathSpmm::with_threads(3), &a, &b, 0)
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_misses, 2);
        assert_eq!(stats.cached_plans, 2);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used_past_capacity() {
        let (a, b) = small();
        let engine = ExecEngine::with_plan_capacity(1, DataPath::Auto, 2);
        assert_eq!(engine.plan_capacity(), 2);
        let k2 = crate::MergePathSpmm::with_threads(2);
        let k3 = crate::MergePathSpmm::with_threads(3);
        let k4 = crate::MergePathSpmm::with_threads(4);
        engine.spmm_cached(&k2, &a, &b, 0).unwrap();
        engine.spmm_cached(&k3, &a, &b, 0).unwrap();
        assert_eq!(engine.stats().plan_cache_evictions, 0);
        // Touch k2 so k3 becomes the least recently used entry...
        engine.spmm_cached(&k2, &a, &b, 0).unwrap();
        // ...then overflow: k3 must be the victim, k2 must survive.
        engine.spmm_cached(&k4, &a, &b, 0).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_evictions, 1);
        assert_eq!(stats.cached_plans, 2);
        engine.spmm_cached(&k2, &a, &b, 0).unwrap();
        assert_eq!(
            engine.stats().plan_cache_hits,
            2,
            "k2 survived the eviction"
        );
        engine.spmm_cached(&k3, &a, &b, 0).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_misses, 4, "k3 was evicted and re-planned");
        assert_eq!(stats.plan_cache_evictions, 2);
        engine.clear_cache();
        assert_eq!(engine.stats().plan_cache_evictions, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_plan_capacity_panics() {
        let _ = ExecEngine::with_plan_capacity(1, DataPath::Auto, 0);
    }

    #[test]
    fn batched_execution_matches_per_block_execution() {
        let a = crate::spmm::test_support::random_matrix(40, 40, 220, 21);
        let kernel = crate::MergePathSpmm::with_threads(7);
        let p = kernel.plan(&a, 8);
        let prep = PreparedPlan::for_matrix(p, &a);
        let blocks: Vec<DenseMatrix<f32>> = [1usize, 4, 3, 16]
            .iter()
            .enumerate()
            .map(|(i, &k)| crate::spmm::test_support::random_dense(40, k, 30 + i as u64))
            .collect();
        let refs: Vec<&DenseMatrix<f32>> = blocks.iter().collect();
        for workers in [1usize, 4] {
            let engine = ExecEngine::new(workers);
            let outs = engine.execute_prepared_batch(&prep, &a, &refs).unwrap();
            assert_eq!(outs.len(), blocks.len());
            for (block, out) in blocks.iter().zip(&outs) {
                let (solo, _) = engine.execute_prepared(&prep, &a, block).unwrap();
                assert_eq!(out.cols(), block.cols());
                // Column content is independent of its neighbours in the
                // batch: additions within a column happen in non-zero
                // order on every data path, so the batched slice is
                // bit-identical to the solo run at one worker and within
                // the usual atomic-reassociation tolerance otherwise.
                if workers == 1 {
                    assert_eq!(out.max_abs_diff(&solo).unwrap(), 0.0);
                } else {
                    assert!(out.approx_eq(&solo, 1e-4).unwrap());
                }
            }
        }
    }

    #[test]
    fn batched_execution_edge_cases() {
        let (a, b) = small();
        let engine = ExecEngine::new(2);
        let prep = PreparedPlan::for_matrix(mixed_plan(), &a);
        assert!(engine
            .execute_prepared_batch(&prep, &a, &[])
            .unwrap()
            .is_empty());
        let outs = engine.execute_prepared_batch(&prep, &a, &[&b]).unwrap();
        assert_eq!(outs.len(), 1);
        let bad = DenseMatrix::<f32>::zeros(5, 2);
        assert!(engine
            .execute_prepared_batch(&prep, &a, &[&b, &bad])
            .is_err());
        // Zero-width blocks ride along without disturbing the batch.
        let empty = DenseMatrix::<f32>::zeros(3, 0);
        let outs = engine
            .execute_prepared_batch(&prep, &a, &[&empty, &b])
            .unwrap();
        assert_eq!(outs[0].cols(), 0);
        assert_eq!(outs[1].cols(), 2);
    }

    #[test]
    fn stealing_policy_is_bit_identical_to_sequential() {
        let a = crate::spmm::test_support::random_matrix(64, 64, 400, 11);
        let b = crate::spmm::test_support::random_dense(64, 19, 12);
        let p = crate::MergePathSpmm::with_threads(13).plan(&a, 19);
        let (seq, _) = execute_sequential(&p, &a, &b).unwrap();
        let prep = PreparedPlan::for_matrix(p, &a);
        for workers in [2usize, 4, 16] {
            let engine =
                ExecEngine::with_sched_policy(workers, DataPath::Auto, SchedPolicy::Stealing);
            assert_eq!(engine.sched_policy(), SchedPolicy::Stealing);
            let (out, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
            // Unlike the static path's atomic adds, the stealing path
            // defers every shared flush to a serial, (thread, segment)-
            // ordered phase — exact equality holds at any worker count.
            assert_eq!(out.max_abs_diff(&seq).unwrap(), 0.0, "workers={workers}");
            let stats = engine.stats();
            assert!(stats.chunks_executed > 0, "stealing path must run");
            let loads = engine.worker_loads();
            assert_eq!(loads.len(), workers);
            assert_eq!(loads.iter().sum::<u64>(), a.nnz() as u64);
        }
    }

    #[test]
    fn auto_policy_routes_by_static_span_skew() {
        // Wide matrix so the evil row 0 really holds a third of the
        // non-zeros (test_support caps it at `cols`).
        let a = crate::spmm::test_support::random_matrix(64, 256, 600, 5);
        let b = crate::spmm::test_support::random_dense(256, 8, 6);
        // Merge-path plans are nnz-balanced: Auto must keep them static.
        let mp = PreparedPlan::for_matrix(crate::MergePathSpmm::with_threads(16).plan(&a, 8), &a);
        let engine = ExecEngine::new(4);
        assert!(mp.static_span_skew(4) <= STEAL_SKEW_THRESHOLD);
        assert!(!engine.selects_stealing(&mp));
        engine.execute_prepared(&mp, &a, &b).unwrap();
        assert_eq!(
            engine.stats().chunks_executed,
            0,
            "balanced plan stays static"
        );
        // A row-split plan on an evil-row matrix statically piles the
        // heavy rows into worker 0's span: Auto must switch to stealing.
        let rs = PreparedPlan::for_matrix(crate::RowSplitSpmm::with_threads(64).plan(&a, 8), &a);
        assert!(rs.static_span_skew(4) > STEAL_SKEW_THRESHOLD);
        assert!(engine.selects_stealing(&rs));
        let (out, _) = engine.execute_prepared(&rs, &a, &b).unwrap();
        assert!(engine.stats().chunks_executed > 0, "skewed plan steals");
        let (seq, _) =
            execute_sequential(&crate::RowSplitSpmm::with_threads(64).plan(&a, 8), &a, &b).unwrap();
        assert_eq!(out.max_abs_diff(&seq).unwrap(), 0.0);
        // Static pinning overrides Auto's choice.
        let pinned = ExecEngine::with_sched_policy(4, DataPath::Auto, SchedPolicy::Static);
        assert!(!pinned.selects_stealing(&rs));
    }

    #[test]
    fn arena_recycling_eliminates_output_allocations() {
        let (a, b) = small();
        let engine = ExecEngine::new(2);
        let prep = PreparedPlan::for_matrix(mixed_plan(), &a);
        let (out, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
        let misses_after_first = engine.stats().arena_misses;
        assert!(misses_after_first > 0, "first run allocates");
        engine.recycle(out);
        let (out, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
        let stats = engine.stats();
        assert!(stats.arena_reuses > 0, "second run reuses the buffer");
        assert_eq!(
            stats.arena_misses, misses_after_first,
            "no new allocations once warm"
        );
        engine.recycle(out);
        engine.clear_cache();
        assert_eq!(engine.stats().arena_reuses, 0);
        assert_eq!(engine.stats().arena_misses, 0);
    }

    #[test]
    fn batch_path_reuses_arena_buffers_when_recycled() {
        let a = crate::spmm::test_support::random_matrix(40, 40, 220, 21);
        let p = crate::MergePathSpmm::with_threads(7).plan(&a, 8);
        let prep = PreparedPlan::for_matrix(p, &a);
        let blocks: Vec<DenseMatrix<f32>> = (0..3)
            .map(|i| crate::spmm::test_support::random_dense(40, 1, 30 + i as u64))
            .collect();
        let refs: Vec<&DenseMatrix<f32>> = blocks.iter().collect();
        let engine = ExecEngine::new(1);
        let outs = engine.execute_prepared_batch(&prep, &a, &refs).unwrap();
        let misses_warm = engine.stats().arena_misses;
        for out in outs {
            engine.recycle(out);
        }
        let outs = engine.execute_prepared_batch(&prep, &a, &refs).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(
            engine.stats().arena_misses,
            misses_warm,
            "steady-state batch allocates nothing"
        );
    }

    /// The unfused oracle: run the plain engine, then apply the epilogue
    /// to every row of the result.
    fn unfused_then_apply(
        engine: &ExecEngine,
        prep: &PreparedPlan,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
        epi: &Epilogue,
    ) -> DenseMatrix<f32> {
        let (mut out, _) = engine.execute_prepared(prep, a, b).unwrap();
        let dim = out.cols();
        if dim > 0 {
            for row in out.as_mut_slice().chunks_mut(dim) {
                epi.apply_row(row);
            }
        }
        out
    }

    #[test]
    fn fused_epilogue_is_bit_identical_to_unfused_composition() {
        let a = crate::spmm::test_support::random_matrix(48, 48, 300, 31);
        let b = crate::spmm::test_support::random_dense(48, 16, 32);
        let p = crate::MergePathSpmm::with_threads(11).plan(&a, 16);
        let bias: Vec<f32> = (0..16).map(|j| (j as f32) * 0.25 - 2.0).collect();
        let epis = [
            Epilogue::Relu,
            Epilogue::Bias(bias.clone()),
            Epilogue::BiasRelu(bias),
        ];
        // Inline (1 worker) and stealing (any worker count) paths are
        // bit-identical to the sequential engine, so fused output must be
        // bit-identical to unfused + apply.
        for workers in [1usize, 4] {
            let engine =
                ExecEngine::with_sched_policy(workers, DataPath::Auto, SchedPolicy::Stealing);
            let prep = PreparedPlan::for_matrix(p.clone(), &a);
            for epi in &epis {
                let want = unfused_then_apply(&engine, &prep, &a, &b, epi);
                let (got, _) = engine.execute_prepared_fused(&prep, &a, &b, epi).unwrap();
                assert_eq!(
                    got.max_abs_diff(&want).unwrap(),
                    0.0,
                    "workers={workers} epi={epi:?}"
                );
            }
        }
        // Static multi-worker: CAS-ordering may reassociate shared-row
        // sums, but fused-vs-unfused must still agree to tolerance (the
        // epilogue itself never reorders anything).
        let engine = ExecEngine::with_sched_policy(4, DataPath::Auto, SchedPolicy::Static);
        let prep = PreparedPlan::for_matrix(p, &a);
        for epi in &epis {
            let want = unfused_then_apply(&engine, &prep, &a, &b, epi);
            let (got, _) = engine.execute_prepared_fused(&prep, &a, &b, epi).unwrap();
            assert!(got.approx_eq(&want, 1e-5).unwrap(), "static epi={epi:?}");
        }
    }

    #[test]
    fn fused_bias_reaches_untouched_and_carry_rows() {
        // mixed_plan: row 0 Shared, row 1 Direct (fusable), row 2
        // Untouched in the parallel phase (carry-only). The bias must
        // still land on rows 0 and 2 via the deferred pass.
        let (a, b) = small();
        let p = mixed_plan();
        let bias = vec![10.0f32, 20.0];
        let engine = ExecEngine::new(2);
        let prep = PreparedPlan::new(p, a.rows());
        assert_eq!(prep.fusable_row_count(), 1, "only row 1 fuses at store");
        let want = unfused_then_apply(&engine, &prep, &a, &b, &Epilogue::Bias(bias.clone()));
        let (got, _) = engine
            .execute_prepared_fused(&prep, &a, &b, &Epilogue::Bias(bias))
            .unwrap();
        assert_eq!(got.max_abs_diff(&want).unwrap(), 0.0);
    }

    #[test]
    fn empty_plan_still_applies_bias_to_zero_rows() {
        let a = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        let b = DenseMatrix::from_fn(3, 2, |_, _| 1.0);
        let p = plan(vec![]);
        let engine = ExecEngine::new(1);
        let prep = PreparedPlan::new(p, a.rows());
        let (out, _) = engine
            .execute_prepared_fused(&prep, &a, &b, &Epilogue::Bias(vec![1.5, -2.5]))
            .unwrap();
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.5, -2.5], "bias lands on zero row {r}");
        }
    }

    #[test]
    fn fused_runs_are_counted_and_validated() {
        let (a, b) = small();
        let engine = ExecEngine::new(1);
        let kernel = crate::MergePathSpmm::with_threads(3);
        engine.spmm_cached(&kernel, &a, &b, 0).unwrap();
        assert_eq!(engine.stats().fused_epilogues, 0, "noop runs don't count");
        engine
            .spmm_cached_fused(&kernel, &a, &b, 0, &Epilogue::Relu)
            .unwrap();
        assert_eq!(engine.stats().fused_epilogues, 1);
        // Bias width must match the dense dimension.
        let err = engine.spmm_cached_fused(&kernel, &a, &b, 0, &Epilogue::Bias(vec![0.0; 3]));
        assert!(err.is_err(), "bias wider than dim rejected");
        engine.clear_cache();
        assert_eq!(engine.stats().fused_epilogues, 0, "reset clears counter");
    }

    #[test]
    fn batch_fused_column_uniform_epilogue_matches_per_block_apply() {
        let a = crate::spmm::test_support::random_matrix(40, 40, 220, 41);
        let p = crate::MergePathSpmm::with_threads(7).plan(&a, 8);
        let prep = PreparedPlan::for_matrix(p, &a);
        let blocks: Vec<DenseMatrix<f32>> = [3usize, 1, 4]
            .iter()
            .enumerate()
            .map(|(i, &k)| crate::spmm::test_support::random_dense(40, k, 50 + i as u64))
            .collect();
        let refs: Vec<&DenseMatrix<f32>> = blocks.iter().collect();
        let engine = ExecEngine::new(2);
        let plain = engine.execute_prepared_batch(&prep, &a, &refs).unwrap();
        let fused = engine
            .execute_prepared_batch_fused(&prep, &a, &refs, &Epilogue::Relu)
            .unwrap();
        for (mut want, got) in plain.into_iter().zip(fused) {
            let dim = want.cols();
            for row in want.as_mut_slice().chunks_mut(dim) {
                Epilogue::Relu.apply_row(row);
            }
            assert!(got.approx_eq(&want, 1e-5).unwrap());
        }
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let (a, b) = small();
        let engine = ExecEngine::new(2);
        let kernel = crate::MergePathSpmm::with_threads(3);
        let (first, _) = engine.spmm_cached(&kernel, &a, &b, 0).unwrap();
        let (second, _) = engine.spmm_cached(&kernel, &a, &b, 0).unwrap();
        assert_eq!(first.max_abs_diff(&second).unwrap(), 0.0);
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_misses, 1);
        assert_eq!(stats.plan_cache_hits, 1);
        assert_eq!(stats.cached_plans, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        engine.clear_cache();
        assert_eq!(engine.stats().cached_plans, 0);
        assert_eq!(engine.stats().hit_rate(), 0.0);
    }

    #[test]
    fn column_striped_policy_is_bit_identical_to_sequential() {
        let a = crate::spmm::test_support::random_matrix(64, 64, 400, 11);
        for dim in [128usize, 256] {
            let b = crate::spmm::test_support::random_dense(64, dim, 12);
            let p = crate::MergePathSpmm::with_threads(13).plan(&a, dim);
            let (seq, _) = execute_sequential(&p, &a, &b).unwrap();
            let prep = PreparedPlan::for_matrix(p, &a);
            for workers in [2usize, 4, 16] {
                let engine = ExecEngine::with_sched_policy(
                    workers,
                    DataPath::Auto,
                    SchedPolicy::ColumnStriped,
                );
                assert!(engine.selects_striping(&prep, dim));
                let (out, _) = engine.execute_prepared(&prep, &a, &b).unwrap();
                // Each stripe replays the full (thread, segment) walk over
                // its own column window, so per-column addition order is
                // exactly the sequential executor's — equality is exact at
                // any worker count, like the stealing path.
                assert_eq!(
                    out.max_abs_diff(&seq).unwrap(),
                    0.0,
                    "dim={dim} workers={workers}"
                );
                let stats = engine.stats();
                // Lane-aligned bounds can cap the stripe count below the
                // worker count (128 columns at 16 lanes is at most 8
                // stripes) and the hardware clamp caps it at the
                // machine's real parallelism (a 1-core CI box runs one
                // full-width stripe) — but a striped run always reports
                // at least one stripe. Fixed multi-stripe splits are
                // exercised bit-exactly by the `stripe` module's own
                // tests, which bypass the clamp.
                assert!(
                    stats.stripes_executed >= 1,
                    "dim={dim} workers={workers}: run was striped"
                );
                assert_eq!(stats.chunks_executed, 0, "striped runs never steal");
                engine.clear_cache();
                assert_eq!(engine.stats().stripes_executed, 0, "reset clears counter");
            }
        }
    }

    #[test]
    fn auto_policy_stripes_wide_dims_and_skewed_mid_dims() {
        let a = crate::spmm::test_support::random_matrix(64, 256, 600, 5);
        let engine = ExecEngine::new(4);
        // Balanced merge-path plan: striping turns on at STRIPE_MIN_DIM
        // and not a column earlier.
        let mp = PreparedPlan::for_matrix(crate::MergePathSpmm::with_threads(16).plan(&a, 8), &a);
        assert!(!engine.selects_striping(&mp, STRIPE_MIN_DIM - 1));
        assert!(engine.selects_striping(&mp, STRIPE_MIN_DIM));
        assert!(!engine.selects_striping(&mp, 0));
        // Skewed row-split plan: the skew lowers the threshold to
        // STRIPE_SKEW_MIN_DIM (striping beats stealing there — it fixes
        // the imbalance *and* removes the serial carry tail).
        let rs = PreparedPlan::for_matrix(crate::RowSplitSpmm::with_threads(64).plan(&a, 8), &a);
        assert!(rs.static_span_skew(4) > STEAL_SKEW_THRESHOLD);
        assert!(engine.selects_striping(&rs, STRIPE_SKEW_MIN_DIM));
        assert!(!engine.selects_striping(&rs, STRIPE_SKEW_MIN_DIM - 1));
        // A wide dim that stripes no longer steals.
        assert!(engine.selects_stealing(&rs));
        let striped = ExecEngine::with_sched_policy(4, DataPath::Auto, SchedPolicy::ColumnStriped);
        assert!(!striped.selects_stealing(&rs));
        // Pinned policies override Auto's dim inspection.
        let pinned = ExecEngine::with_sched_policy(4, DataPath::Auto, SchedPolicy::Static);
        assert!(!pinned.selects_striping(&mp, 512));
        let stealing = ExecEngine::with_sched_policy(4, DataPath::Auto, SchedPolicy::Stealing);
        assert!(!stealing.selects_striping(&mp, 512));
        // One worker never stripes.
        assert!(!ExecEngine::new(1).selects_striping(&mp, 512));
        // And an Auto engine actually routes a wide run through stripes.
        let b = crate::spmm::test_support::random_dense(256, STRIPE_MIN_DIM, 6);
        let p = crate::MergePathSpmm::with_threads(16).plan(&a, STRIPE_MIN_DIM);
        let (seq, _) = execute_sequential(&p, &a, &b).unwrap();
        let (out, _) = engine.execute_prepared(&mp, &a, &b).unwrap();
        assert!(engine.stats().stripes_executed > 0, "auto run striped");
        assert_eq!(out.max_abs_diff(&seq).unwrap(), 0.0);
    }

    #[test]
    fn striped_fused_epilogue_is_bit_identical_to_unfused_composition() {
        let a = crate::spmm::test_support::random_matrix(48, 48, 300, 31);
        let dim = 128usize;
        let b = crate::spmm::test_support::random_dense(48, dim, 32);
        let p = crate::MergePathSpmm::with_threads(11).plan(&a, dim);
        let bias: Vec<f32> = (0..dim).map(|j| (j as f32) * 0.25 - 2.0).collect();
        let engine = ExecEngine::with_sched_policy(4, DataPath::Auto, SchedPolicy::ColumnStriped);
        let prep = PreparedPlan::for_matrix(p, &a);
        for epi in [
            Epilogue::Relu,
            Epilogue::Bias(bias.clone()),
            Epilogue::BiasRelu(bias),
        ] {
            let want = unfused_then_apply(&engine, &prep, &a, &b, &epi);
            let (got, _) = engine.execute_prepared_fused(&prep, &a, &b, &epi).unwrap();
            // Stripe-local stores, carries, deferred rows and epilogue all
            // preserve the sequential order per column window.
            assert_eq!(got.max_abs_diff(&want).unwrap(), 0.0, "epi={epi:?}");
        }
    }

    #[test]
    fn fast_math_opt_in_is_gated_and_counted() {
        let (a, b) = small();
        let p = mixed_plan();
        let prep = PreparedPlan::for_matrix(p, &a);
        // Exact default: no FastMath runs counted.
        let exact = ExecEngine::with_data_path(2, DataPath::Vector).with_fast_math(false);
        assert!(!exact.fast_math());
        exact.execute_prepared(&prep, &a, &b).unwrap();
        assert_eq!(exact.stats().fastmath_runs, 0);
        // Opted in: counted only where the CPU proof holds, and results
        // stay within contraction tolerance of the exact run.
        let fast = ExecEngine::with_data_path(2, DataPath::Vector).with_fast_math(true);
        assert!(fast.fast_math());
        let (got, _) = fast.execute_prepared(&prep, &a, &b).unwrap();
        let (want, _) = exact.execute_prepared(&prep, &a, &b).unwrap();
        assert!(got.approx_eq(&want, 1e-5).unwrap());
        if crate::fastmath_supported() {
            assert!(fast.stats().fastmath_runs > 0, "fma-proven CPU counts");
            fast.clear_cache();
            assert_eq!(fast.stats().fastmath_runs, 0, "reset clears counter");
        } else {
            assert_eq!(fast.stats().fastmath_runs, 0, "unproven CPU stays exact");
        }
        // The scalar path never contracts, opt-in or not.
        let scalar = ExecEngine::with_data_path(2, DataPath::Scalar).with_fast_math(true);
        scalar.execute_prepared(&prep, &a, &b).unwrap();
        assert_eq!(scalar.stats().fastmath_runs, 0);
    }
}
