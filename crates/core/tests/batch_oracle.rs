//! Property tests pinning **block-diagonal packed execution** to the
//! per-constituent sequential oracle: a batch of small graphs packed
//! onto one diagonal by [`BlockDiagCsr`], planned with the row-aligned
//! [`BatchMergeSpmm`] kernel, and executed as one prepared run must be
//! **bit-identical** — per constituent, after scattering each row band
//! back out — to running every constituent through
//! [`execute_sequential`] separately. Row-aligned plans never split a
//! row across threads, so every output row is one flat fold whatever
//! the data path, scheduling policy, or worker count.

use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{
    default_workers, BatchMergeSpmm, DataPath, ExecEngine, PreparedPlan, SchedPolicy, SerialSpmm,
    SpmmKernel,
};
use mpspmm_sparse::{BlockDiagCsr, CsrMatrix, DenseMatrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random square graph; `nnz == 0` yields a completely empty matrix
/// (rows present, no edges) — a legal packed constituent.
fn random_graph(rows: usize, nnz: usize, seed: u64) -> CsrMatrix<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coords = std::collections::BTreeSet::new();
    while coords.len() < nnz.min(rows * rows) {
        coords.insert((rng.gen_range(0..rows), rng.gen_range(0..rows)));
    }
    let triplets: Vec<(usize, usize, f32)> = coords
        .into_iter()
        .map(|(r, c)| (r, c, rng.gen_range(-2.0..2.0)))
        .collect();
    CsrMatrix::from_triplets(rows, rows, &triplets).unwrap()
}

fn features(rows: usize, dim: usize, seed: u64) -> DenseMatrix<f32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEA7);
    DenseMatrix::from_fn(rows, dim, |_, _| rng.gen_range(-1.0..1.0))
}

/// Per-constituent oracle: a one-segment-per-row serial plan replayed by
/// `execute_sequential` — the flat ascending per-row fold the packed
/// row-aligned plan must reproduce inside each diagonal block.
fn sequential_reference(g: &CsrMatrix<f32>, x: &DenseMatrix<f32>, dim: usize) -> DenseMatrix<f32> {
    execute_sequential(&SerialSpmm.plan(g, dim), g, x)
        .unwrap()
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn packed_execution_bit_matches_per_graph_sequential(
        count in 2usize..6,
        dim in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut graphs: Vec<Arc<CsrMatrix<f32>>> = Vec::new();
        let mut feats = Vec::new();
        for i in 0..count {
            let rows = rng.gen_range(2usize..24);
            // The first constituent is always empty: packing must carry
            // zero-nnz graphs without disturbing its neighbours' bands.
            let nnz = if i == 0 { 0 } else { rng.gen_range(1..rows * 3) };
            let g = random_graph(rows, nnz, seed ^ (i as u64).wrapping_mul(0x9E37));
            feats.push(features(rows, dim, seed.wrapping_mul(31) ^ i as u64));
            graphs.push(Arc::new(g));
        }
        let pack = BlockDiagCsr::build(&graphs).unwrap();
        let stacked = pack.stack_features(&feats.iter().collect::<Vec<_>>()).unwrap();
        let plan = BatchMergeSpmm::new().plan(pack.matrix(), dim);
        plan.validate(pack.matrix()).unwrap();
        let prep = PreparedPlan::for_matrix(plan, pack.matrix());
        let wants: Vec<DenseMatrix<f32>> = graphs
            .iter()
            .zip(&feats)
            .map(|(g, x)| sequential_reference(g, x, dim))
            .collect();
        for path in [DataPath::Scalar, DataPath::Tiled, DataPath::Vector] {
            for policy in [
                SchedPolicy::Static,
                SchedPolicy::Stealing,
                SchedPolicy::ColumnStriped,
                SchedPolicy::Auto,
            ] {
                for &workers in &[1usize, 2, 8] {
                    let engine = ExecEngine::with_sched_policy(workers, path, policy)
                        .with_fast_math(false);
                    let (out, _) = engine
                        .execute_prepared(&prep, pack.matrix(), &stacked)
                        .unwrap();
                    for (i, want) in wants.iter().enumerate() {
                        let band = pack.scatter_block(&out, i);
                        prop_assert_eq!(
                            band.max_abs_diff(want).unwrap(),
                            0.0,
                            "graph {} path={:?} policy={:?} workers={}",
                            i, path, policy, workers
                        );
                    }
                }
            }
        }
    }
}

/// A single-graph batch is zero-copy (the packed matrix *is* the
/// constituent) and must still execute bit-identically at every worker
/// count; a batch of entirely empty graphs must produce all-zero bands.
#[test]
fn single_graph_and_all_empty_batches_round_trip() {
    let g = Arc::new(random_graph(12, 30, 7));
    let pack = BlockDiagCsr::build(std::slice::from_ref(&g)).unwrap();
    assert!(
        Arc::ptr_eq(pack.matrix(), &g),
        "single-graph pack is zero-copy"
    );
    let x = features(12, 5, 3);
    let stacked = pack.stack_features(&[&x]).unwrap();
    let prep =
        PreparedPlan::for_matrix(BatchMergeSpmm::new().plan(pack.matrix(), 5), pack.matrix());
    let want = sequential_reference(&g, &x, 5);
    for &workers in &[1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let (out, _) = engine
            .execute_prepared(&prep, pack.matrix(), &stacked)
            .unwrap();
        assert_eq!(
            pack.scatter_block(&out, 0).max_abs_diff(&want).unwrap(),
            0.0,
            "workers={workers}"
        );
    }

    let empties: Vec<Arc<CsrMatrix<f32>>> = (0..3)
        .map(|i| Arc::new(random_graph(4 + i, 0, 0)))
        .collect();
    let pack = BlockDiagCsr::build(&empties).unwrap();
    assert_eq!(pack.nnz(), 0);
    let feats: Vec<DenseMatrix<f32>> = empties.iter().map(|g| features(g.rows(), 3, 1)).collect();
    let stacked = pack
        .stack_features(&feats.iter().collect::<Vec<_>>())
        .unwrap();
    let prep =
        PreparedPlan::for_matrix(BatchMergeSpmm::new().plan(pack.matrix(), 3), pack.matrix());
    let engine = ExecEngine::new(2);
    let (out, _) = engine
        .execute_prepared(&prep, pack.matrix(), &stacked)
        .unwrap();
    assert!(out.as_slice().iter().all(|&v| v == 0.0));
}

/// The tier-1 matrix leg: at the resolved worker count (honouring
/// `MPSPMM_WORKERS`, swept over 1/2/8 by `scripts/tier1.sh`) a packed
/// batch with an adversarial mix — an evil heavy graph next to empty and
/// single-edge graphs — stays bit-identical to the per-graph oracle
/// under every scheduling policy.
#[test]
fn resolved_worker_count_packed_batch_bit_matches_oracle() {
    let workers = default_workers();
    let graphs: Vec<Arc<CsrMatrix<f32>>> = vec![
        Arc::new(random_graph(6, 0, 1)),
        Arc::new(random_graph(40, 300, 2)),
        Arc::new(random_graph(3, 1, 3)),
        Arc::new(random_graph(17, 51, 4)),
    ];
    let dim = 9;
    let feats: Vec<DenseMatrix<f32>> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| features(g.rows(), dim, 100 + i as u64))
        .collect();
    let pack = BlockDiagCsr::build(&graphs).unwrap();
    let stacked = pack
        .stack_features(&feats.iter().collect::<Vec<_>>())
        .unwrap();
    let prep = PreparedPlan::for_matrix(
        BatchMergeSpmm::new().plan(pack.matrix(), dim),
        pack.matrix(),
    );
    for policy in [
        SchedPolicy::Static,
        SchedPolicy::Stealing,
        SchedPolicy::ColumnStriped,
        SchedPolicy::Auto,
    ] {
        let engine =
            ExecEngine::with_sched_policy(workers, DataPath::Auto, policy).with_fast_math(false);
        let (out, _) = engine
            .execute_prepared(&prep, pack.matrix(), &stacked)
            .unwrap();
        for (i, (g, x)) in graphs.iter().zip(&feats).enumerate() {
            let want = sequential_reference(g, x, dim);
            assert_eq!(
                pack.scatter_block(&out, i).max_abs_diff(&want).unwrap(),
                0.0,
                "graph {i} policy={policy:?} workers={workers}"
            );
        }
    }
}
