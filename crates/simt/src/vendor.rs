//! The closed-source vendor library (cuSPARSE) model.
//!
//! §III-D / §V: "cuSPARSE is not limited to using row-wise parallelization
//! strategies, and based on the shapes of the input and output matrices it
//! picks from a slew of available kernels ranging from row-wise,
//! column-wise, inner, and outer product combinations of data flow."
//!
//! We model that kernel-selection behaviour rather than any particular
//! proprietary kernel: the library prices a small portfolio of candidate
//! strategies on the SIMT machine model and takes the best —
//!
//! * a **row-wise** kernel (one row per thread, no preprocessing) — the
//!   kernel that loses to nnz-splitting approaches on power-law inputs;
//! * a **balanced** kernel available only for *regular* inputs (near-even
//!   row lengths): equivalent in schedule quality to a merge-path split
//!   without atomics, reflecting that for regular matrices a vendor can
//!   statically split non-zeros evenly without fine-grain synchronization;
//! * an **adaptive wide-matrix** kernel for very large, very sparse,
//!   bounded-degree inputs (the Twitter-partial case, where the paper
//!   "deduce\[s\] that cuSPARSE is able to utilize a different
//!   parallelization kernel"), modeled as the balanced kernel with a
//!   column-split efficiency factor.

use mpspmm_core::{Flush, KernelPlan, MergePathSpmm, Segment, SpmmKernel, ThreadPlan};
use mpspmm_sparse::stats::DegreeStats;
use mpspmm_sparse::CsrMatrix;

use crate::config::GpuConfig;
use crate::engine::{simulate, SimReport};
use crate::lower::{lower_with_policy, LoweringPolicy};

/// Gini threshold below which the input counts as regular enough for the
/// vendor's balanced kernels.
const REGULARITY_GINI: f64 = 0.25;

/// Efficiency factor of the adaptive wide-matrix kernel relative to the
/// balanced kernel (calibrated to the Twitter-partial gap in Figure 4).
const ADAPTIVE_FACTOR: f64 = 0.45;

/// Which candidate kernel the vendor model selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorKernel {
    /// Plain row-wise CSR kernel.
    RowWise,
    /// Statically balanced nnz split (regular inputs only).
    Balanced,
    /// Adaptive column-split kernel for huge bounded-degree inputs.
    Adaptive,
}

/// Result of the vendor-library simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct VendorReport {
    /// Timing of the selected kernel.
    pub report: SimReport,
    /// Which kernel the selection heuristic picked.
    pub selected: VendorKernel,
}

/// Non-zeros per thread chunk in the vendor row-wise kernel: vendor CSR
/// kernels bound per-thread work by splitting long rows (tail chunks
/// accumulate atomically), which tempers — but does not remove — the
/// evil-row penalty.
const ROW_CHUNK: usize = 256;

/// Builds the vendor row-wise kernel plan: one thread per row, long rows
/// split into [`ROW_CHUNK`]-sized chunks (first chunk regular, tail chunks
/// atomic).
fn row_wise_plan(a: &CsrMatrix<f32>) -> KernelPlan {
    let rp = a.row_ptr();
    let mut threads = Vec::with_capacity(a.rows());
    for row in 0..a.rows() {
        let (start, end) = (rp[row], rp[row + 1]);
        if start == end {
            continue;
        }
        let chunks = (end - start).div_ceil(ROW_CHUNK);
        let mut lo = start;
        let mut first = true;
        while lo < end {
            let hi = (lo + ROW_CHUNK).min(end);
            threads.push(ThreadPlan {
                segments: vec![Segment {
                    row,
                    nz_start: lo,
                    nz_end: hi,
                    flush: if first && chunks == 1 {
                        Flush::Regular
                    } else {
                        Flush::Atomic
                    },
                }],
            });
            first = false;
            lo = hi;
        }
    }
    KernelPlan { threads }
}

/// Simulates the vendor library computing `A × XW` at dimension `dim`.
pub fn simulate_vendor(a: &CsrMatrix<f32>, dim: usize, cfg: &GpuConfig) -> VendorReport {
    let stats = DegreeStats::compute(a);

    // Candidate 1: row-wise with long-row chunking.
    let row_plan = row_wise_plan(a);
    let row_run = lower_with_policy(
        &row_plan,
        dim,
        cfg.lanes,
        LoweringPolicy::merge_path(),
        a.cols(),
    );
    let mut best = VendorReport {
        report: simulate(&row_run, cfg),
        selected: VendorKernel::RowWise,
    };

    if stats.gini < REGULARITY_GINI {
        // Candidate 2: balanced static split (no atomics needed for
        // regular inputs — every chunk boundary can be snapped to a row
        // boundary without imbalance). Modeled as a merge-path schedule
        // whose atomic updates are free of contention: we price the
        // MergePath plan and strip the atomic bound by using the
        // serial-fixup-free regular plan of a row split with many threads.
        let balanced_plan = MergePathSpmm::with_cost(32).plan(a, dim);
        let run = lower_with_policy(
            &balanced_plan,
            dim,
            cfg.lanes,
            LoweringPolicy::merge_path(),
            a.cols(),
        );
        let balanced = simulate(&run, cfg);
        if balanced.cycles < best.report.cycles {
            best = VendorReport {
                report: balanced,
                selected: VendorKernel::Balanced,
            };
        }

        // Candidate 3: adaptive wide-matrix kernel. Heuristic mirrors the
        // observed cuSPARSE behaviour on Twitter-partial: very many rows,
        // very low average degree, non-trivial maximum degree.
        if stats.rows > 400_000 && stats.avg < 3.5 && stats.max >= 8 {
            let mut adaptive = best.report.clone();
            adaptive.cycles *= ADAPTIVE_FACTOR;
            adaptive.micros *= ADAPTIVE_FACTOR;
            adaptive.parallel_cycles *= ADAPTIVE_FACTOR;
            if adaptive.cycles < best.report.cycles {
                best = VendorReport {
                    report: adaptive,
                    selected: VendorKernel::Adaptive,
                };
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpspmm_graphs::{DatasetSpec, GraphClass};

    #[test]
    fn power_law_inputs_select_row_wise() {
        let a = DatasetSpec::custom("p", GraphClass::PowerLaw, 3_000, 12_000, 500).synthesize(1);
        let v = simulate_vendor(&a, 16, &GpuConfig::rtx6000());
        assert_eq!(v.selected, VendorKernel::RowWise);
    }

    #[test]
    fn structured_inputs_use_a_regular_kernel() {
        // With even row lengths, row-wise and balanced are both fine; the
        // point is that the vendor never needs atomics here, so either
        // non-adaptive candidate may win.
        let a = DatasetSpec::custom("s", GraphClass::Structured, 20_000, 60_000, 8).synthesize(1);
        let v = simulate_vendor(&a, 16, &GpuConfig::rtx6000());
        assert_ne!(v.selected, VendorKernel::Adaptive);
    }

    #[test]
    fn twitter_like_inputs_select_adaptive() {
        let a =
            DatasetSpec::custom("tw", GraphClass::Structured, 500_000, 1_250_000, 12).synthesize(1);
        let v = simulate_vendor(&a, 16, &GpuConfig::rtx6000());
        assert_eq!(v.selected, VendorKernel::Adaptive);
    }

    #[test]
    fn selection_never_worsens_row_wise() {
        for (class, max) in [(GraphClass::PowerLaw, 400), (GraphClass::Structured, 9)] {
            let a = DatasetSpec::custom("x", class, 10_000, 30_000, max).synthesize(2);
            let cfg = GpuConfig::rtx6000();
            let v = simulate_vendor(&a, 16, &cfg);
            let row_plan = row_wise_plan(&a);
            let row_run = lower_with_policy(
                &row_plan,
                16,
                cfg.lanes,
                LoweringPolicy::merge_path(),
                a.cols(),
            );
            let row = simulate(&row_run, &cfg);
            assert!(v.report.cycles <= row.cycles + 1e-9);
        }
    }
}
