//! Benchmark of merge-path schedule construction — the "scheduling
//! overhead" of the online setting (Figure 8), measured on this CPU with
//! a plain `Instant` timing loop (no criterion in the offline build).

use mpspmm_bench::time_ns;
use mpspmm_core::Schedule;
use mpspmm_graphs::{DatasetSpec, GraphClass};

fn main() {
    let spec = DatasetSpec::custom("pl", GraphClass::PowerLaw, 50_000, 250_000, 2_000);
    let a = spec.synthesize(7);
    println!("schedule/build ({} merge items)", a.merge_items());
    for threads in [64usize, 1024, 16_384] {
        let ns = time_ns(3, 20, || {
            Schedule::build(&a, threads);
        });
        println!(
            "  threads {threads:>6} {:>12.0} ns/build  {:>8.3} ns/item",
            ns,
            ns / a.merge_items() as f64
        );
    }
}
