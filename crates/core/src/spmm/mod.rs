//! SpMM kernels: the proposed MergePath-SpMM algorithm and every software
//! baseline the paper evaluates against.
//!
//! | Kernel | Paper role | Decomposition | Output updates |
//! |---|---|---|---|
//! | [`MergePathSpmm`] | **the contribution** (§III, Algorithm 2) | merge-path, cost-tunable | atomic for partial rows only |
//! | [`RowSplitSpmm`] | accelerator-style baseline (§II) | equal contiguous row chunks | never atomic (but imbalanced) |
//! | [`NnzSplitSpmm`] | GNNAdvisor baseline (§II) | fixed-size neighbor groups | always atomic |
//! | [`MergePathSerialFixup`] | merge-path SpMV baseline generalized to SpMM (Figure 2) | merge-path | complete rows regular, spanning rows via serial fix-up |
//! | [`SerialSpmm`] | correctness oracle | single thread | regular |
//!
//! All kernels implement [`SpmmKernel`], produce a [`KernelPlan`]
//! (consumed by the CPU executors and by the machine-model simulators),
//! and compute identical results up to floating-point association.

mod mergepath;
mod nnz_split;
mod row_aligned;
mod row_split;
mod serial;
mod serial_fixup;

pub use mergepath::{plan_from_schedule, CostPolicy, MergePathSpmm};
pub use nnz_split::{NeighborPartitionIndex, NnzSplitSpmm};
pub use row_aligned::{BatchMergeSpmm, BATCH_MIN_THREADS};
pub use row_split::RowSplitSpmm;
pub use serial::SerialSpmm;
pub use serial_fixup::MergePathSerialFixup;

use mpspmm_sparse::{CsrMatrix, DenseMatrix, SparseFormatError};

use crate::executor;
use crate::plan::KernelPlan;
use crate::stats::WriteStats;

/// Number of worker OS threads the execution engine uses by default.
///
/// Resolved once per process and cached: the `MPSPMM_WORKERS` environment
/// variable (a positive integer) wins if set and valid; an unset variable
/// uses the machine's available parallelism, while an invalid or zero
/// value falls back to available parallelism with a one-line warning on
/// stderr. The resolved count (and where it came from) is logged once at
/// first use — i.e. at worker-pool construction — so a serving process
/// records its parallelism at startup; the environment is never re-read
/// after that, and changing the variable later has no effect.
pub fn default_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let raw = std::env::var("MPSPMM_WORKERS").ok();
        let (workers, warning) = resolve_workers(raw.as_deref(), available);
        let source = match (&raw, &warning) {
            (Some(_), None) => "MPSPMM_WORKERS",
            _ => "available parallelism",
        };
        if let Some(msg) = warning {
            eprintln!("{msg}");
        }
        eprintln!("mpspmm: engine workers = {workers} (from {source})");
        workers
    })
}

/// Pure resolution of the `MPSPMM_WORKERS` override against the machine's
/// `available` parallelism: `(workers, warning)`.
///
/// `None` (variable unset) resolves to `available` with no warning; a
/// valid positive integer wins; anything else — unparsable text, zero, a
/// negative or overflowing number — also resolves to `available` but
/// returns a one-line warning so the misconfiguration is visible instead
/// of a panic or a silent single-digit typo taking effect.
pub(crate) fn resolve_workers(raw: Option<&str>, available: usize) -> (usize, Option<String>) {
    let available = available.max(1);
    match raw {
        None => (available, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => (n, None),
            _ => (
                available,
                Some(format!(
                    "mpspmm: ignoring invalid MPSPMM_WORKERS={raw:?} (want a positive integer); \
                     using available parallelism ({available})"
                )),
            ),
        },
    }
}

/// Order-sensitive FNV-1a mix of a kernel's configuration words, used by
/// [`SpmmKernel::config_fingerprint`] implementations.
pub(crate) fn mix_config(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        for byte in p.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// A sparse-matrix × dense-matrix multiplication strategy.
///
/// `C = A × B` with `A` sparse CSR (`n×n` adjacency) and `B` dense
/// (`n×d`, the `XW` product in a GCN layer).
pub trait SpmmKernel: Send + Sync {
    /// Strategy name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Decomposes the kernel into logical-thread work for a dense
    /// dimension of `dim` columns.
    fn plan(&self, a: &CsrMatrix<f32>, dim: usize) -> KernelPlan;

    /// Hash of the kernel's tunable configuration, used (together with
    /// [`SpmmKernel::name`]) to key the engine's plan cache. Two instances
    /// that can produce different plans for the same matrix must return
    /// different fingerprints; configuration-free kernels keep the
    /// default.
    fn config_fingerprint(&self) -> u64 {
        0
    }

    /// Computes `A × B` on the default worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    fn spmm(
        &self,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        self.spmm_with_stats(a, b).map(|(out, _)| out)
    }

    /// Computes `A × B` and reports the realized write statistics
    /// (Figure 5 accounting).
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    fn spmm_with_stats(
        &self,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        executor::check_shapes(a, b)?;
        let plan = self.plan(a, b.cols());
        crate::engine::ExecEngine::global().execute(&plan, a, b)
    }

    /// Computes `A × B` deterministically on the calling thread, replaying
    /// the same logical-thread decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if
    /// `a.cols() != b.rows()`.
    fn spmm_sequential(
        &self,
        a: &CsrMatrix<f32>,
        b: &DenseMatrix<f32>,
    ) -> Result<(DenseMatrix<f32>, WriteStats), SparseFormatError> {
        executor::check_shapes(a, b)?;
        let plan = self.plan(a, b.cols());
        executor::execute_sequential(&plan, a, b)
    }
}

#[cfg(test)]
mod worker_resolution_tests {
    use super::resolve_workers;

    #[test]
    fn unset_uses_available_parallelism_silently() {
        assert_eq!(resolve_workers(None, 8), (8, None));
        // Degenerate `available` is clamped to one worker.
        assert_eq!(resolve_workers(None, 0), (1, None));
    }

    #[test]
    fn valid_positive_override_wins() {
        assert_eq!(resolve_workers(Some("3"), 8), (3, None));
        assert_eq!(resolve_workers(Some(" 16 "), 2), (16, None));
    }

    #[test]
    fn invalid_and_zero_values_fall_back_with_warning() {
        for bad in ["0", "-2", "four", "", "1.5", "99999999999999999999999999"] {
            let (workers, warning) = resolve_workers(Some(bad), 4);
            assert_eq!(workers, 4, "input {bad:?}");
            let msg = warning.unwrap_or_else(|| panic!("no warning for {bad:?}"));
            assert!(
                msg.contains("MPSPMM_WORKERS"),
                "warning names the variable: {msg}"
            );
            assert!(msg.contains('4'), "warning names the fallback: {msg}");
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Dense reference multiply (the oracle all kernels are checked
    /// against).
    pub fn dense_reference(a: &CsrMatrix<f32>, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            let row = a.row(r);
            for (&c, &v) in row.cols.iter().zip(row.vals) {
                for d in 0..b.cols() {
                    out.set(r, d, out.get(r, d) + v * b.get(c, d));
                }
            }
        }
        out
    }

    /// A random sparse matrix with a deliberately evil first row.
    pub fn random_matrix(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coords = std::collections::BTreeSet::new();
        // Evil row: pack a third of the budget into row 0.
        let evil = (nnz / 3).min(cols);
        for c in 0..evil {
            coords.insert((0usize, c));
        }
        while coords.len() < nnz.min(rows * cols) {
            coords.insert((rng.gen_range(0..rows), rng.gen_range(0..cols)));
        }
        let triplets: Vec<(usize, usize, f32)> = coords
            .into_iter()
            .map(|(r, c)| (r, c, rng.gen_range(-2.0..2.0)))
            .collect();
        CsrMatrix::from_triplets(rows, cols, &triplets).unwrap()
    }

    /// A random dense matrix.
    pub fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix<f32> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Asserts the vectorized data path is bit-identical to the scalar
    /// oracle for one kernel's plan, both with plain CSR indices and with
    /// the packed `u32` indices the plan cache uses.
    pub fn check_vector_path_bit_identical(
        kernel: &dyn SpmmKernel,
        a: &CsrMatrix<f32>,
        dim: usize,
    ) {
        use crate::datapath::DataPath;
        use crate::engine::{ExecEngine, PreparedPlan};

        let b = random_dense(a.cols(), dim, 123);
        let plan = kernel.plan(a, dim);
        let (oracle, _) = executor::execute_sequential(&plan, a, &b).unwrap();
        for path in [DataPath::Scalar, DataPath::Vector] {
            let engine = ExecEngine::with_data_path(1, path);
            let (plain, _) = engine.execute(&plan, a, &b).unwrap();
            assert_eq!(
                plain.max_abs_diff(&oracle).unwrap(),
                0.0,
                "{}: {path:?} path diverges from oracle at dim {dim}",
                kernel.name()
            );
            let prep = PreparedPlan::for_matrix(plan.clone(), a);
            let (packed, _) = engine.execute_prepared(&prep, a, &b).unwrap();
            assert_eq!(
                packed.max_abs_diff(&oracle).unwrap(),
                0.0,
                "{}: packed {path:?} path diverges from oracle at dim {dim}",
                kernel.name()
            );
        }
    }

    /// Exercises one kernel against the dense oracle: plan validity,
    /// sequential and parallel agreement.
    pub fn check_kernel(kernel: &dyn SpmmKernel, a: &CsrMatrix<f32>, dim: usize) {
        let b = random_dense(a.cols(), dim, 99);
        let plan = kernel.plan(a, dim);
        plan.validate(a)
            .unwrap_or_else(|e| panic!("{}: invalid plan: {e}", kernel.name()));
        let reference = dense_reference(a, &b);
        let (seq, _) = kernel.spmm_sequential(a, &b).unwrap();
        let scale = reference.frobenius_norm().max(1.0);
        assert!(
            seq.max_abs_diff(&reference).unwrap() <= 1e-4 * scale,
            "{}: sequential result diverges",
            kernel.name()
        );
        let (par, _) = kernel.spmm_with_stats(a, &b).unwrap();
        assert!(
            par.max_abs_diff(&reference).unwrap() <= 1e-4 * scale,
            "{}: parallel result diverges",
            kernel.name()
        );
    }
}
