use crate::SparseFormatError;

/// A dense matrix in row-major storage.
///
/// This is the format of the `XW` operand and the `C` output of the SpMM
/// kernel `C = A × XW`. Rows are contiguous so a kernel thread touching
/// `XW[j, :]` streams one cache-friendly slice — the same layout the paper's
/// GPU kernels assume.
///
/// # Example
///
/// ```
/// use mpspmm_sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(1, 2, 7.0);
/// assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> DenseMatrix<T> {
    /// Creates a matrix filled with `T::default()` (zero for numbers).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> DenseMatrix<T> {
    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::IndexValueLength`] if
    /// `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, SparseFormatError> {
        if data.len() != rows * cols {
            return Err(SparseFormatError::IndexValueLength {
                indices: rows * cols,
                values: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the "dimension size" `d` of the paper).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The full row-major backing slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the full row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl DenseMatrix<f32> {
    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32, SparseFormatError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseFormatError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Whether every element differs from `other` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] if shapes differ.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> Result<bool, SparseFormatError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills the matrix with zeros (reuses the allocation between kernel
    /// invocations, as the GPU kernels reuse the output buffer).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::<f32>::zeros(2, 2);
        assert_eq!(m.get(0, 0), 0.0);
        m.set(0, 1, 4.0);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0f32; 3]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.as_slice()[2], 2.0);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DenseMatrix::<f32>::zeros(2, 2);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = DenseMatrix::from_vec(1, 2, vec![1.0f32, 2.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 2, vec![1.0f32, 2.5]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.5).unwrap());
        assert!(!a.approx_eq(&b, 0.4).unwrap());
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = DenseMatrix::<f32>::zeros(1, 2);
        let b = DenseMatrix::<f32>::zeros(2, 1);
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = DenseMatrix::from_vec(1, 2, vec![1.0f32, 2.0]).unwrap();
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0f32, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = DenseMatrix::<f32>::zeros(1, 1);
        let _ = m.get(1, 0);
    }
}
