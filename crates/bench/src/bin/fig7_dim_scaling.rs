//! Figure 7 — performance scaling across dimension sizes.
//!
//! Speedup of MergePath-SpMM, GNNAdvisor, and GNNAdvisor-opt at dimensions
//! 128 down to 2, normalized to GNNAdvisor at dimension 128 (geometric
//! mean over the sample graphs). MergePath-SpMM uses the per-dimension
//! best cost from this model's Figure 6 sweep, mirroring the paper's
//! per-dimension tuning.

use mpspmm_bench::{banner, full_size_requested, geomean, load, SEED};
use mpspmm_graphs::find_dataset;
use mpspmm_simt::{GpuConfig, GpuKernel};
use mpspmm_sparse::CsrMatrix;

const SAMPLE: [&str; 5] = ["Pubmed", "Wiki-Vote", "email-Enron", "Nell", "PPI"];
const COSTS: [usize; 11] = [2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// Best merge-path cost at `dim` for this machine model (the same sweep
/// Figure 6 performs).
fn best_cost(graphs: &[CsrMatrix<f32>], dim: usize, cfg: &GpuConfig) -> usize {
    COSTS
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let ta = geomean(
                &graphs
                    .iter()
                    .map(|g| {
                        GpuKernel::MergePath { cost: Some(a) }
                            .simulate(g, dim, cfg)
                            .micros
                    })
                    .collect::<Vec<_>>(),
            );
            let tb = geomean(
                &graphs
                    .iter()
                    .map(|g| {
                        GpuKernel::MergePath { cost: Some(b) }
                            .simulate(g, dim, cfg)
                            .micros
                    })
                    .collect::<Vec<_>>(),
            );
            ta.partial_cmp(&tb).expect("finite times")
        })
        .expect("non-empty cost list")
}

fn main() {
    let full = full_size_requested();
    banner(
        "Figure 7",
        "speedup at dimensions 128..2 normalized to GNNAdvisor at dim 128",
        full,
    );
    println!("sample graphs: {SAMPLE:?}, seed {SEED}\n");

    let cfg = GpuConfig::rtx6000();
    let graphs: Vec<CsrMatrix<f32>> = SAMPLE
        .iter()
        .map(|n| load(find_dataset(n).expect("in Table II"), full).1)
        .collect();

    let denom: Vec<f64> = graphs
        .iter()
        .map(|a| {
            GpuKernel::GnnAdvisor {
                opt: false,
                ng_size: None,
            }
            .simulate(a, 128, &cfg)
            .micros
        })
        .collect();

    println!(
        "{:<6} {:>12} {:>16} {:>16} {:>10}",
        "dim", "GNNAdvisor", "GNNAdvisor-opt", "MergePath-SpMM", "(MP cost)"
    );
    for dim in [128usize, 64, 32, 16, 8, 4, 2] {
        let cost = best_cost(&graphs, dim, &cfg);
        let speedup = |k: GpuKernel| {
            geomean(
                &graphs
                    .iter()
                    .zip(&denom)
                    .map(|(a, d)| d / k.simulate(a, dim, &cfg).micros)
                    .collect::<Vec<_>>(),
            )
        };
        println!(
            "{dim:<6} {:>12.2} {:>16.2} {:>16.2} {:>10}",
            speedup(GpuKernel::GnnAdvisor {
                opt: false,
                ng_size: None
            }),
            speedup(GpuKernel::GnnAdvisor {
                opt: true,
                ng_size: None
            }),
            speedup(GpuKernel::MergePath { cost: Some(cost) }),
            cost,
        );
    }

    println!(
        "\nPaper shape: all kernels speed up as the dimension shrinks; \
         GNNAdvisor saturates below dim 32 (it cannot fill SIMD lanes); \
         GNNAdvisor-opt keeps scaling below 32 (~9x at dim 2); \
         MergePath-SpMM leads at every dimension (27.6x at dim 2 in the \
         paper; this model reproduces the ordering with a compressed \
         magnitude — see EXPERIMENTS.md)."
    );
}
