//! `mpspmm-serve` — batched, multi-tenant inference serving over the
//! MergePath-SpMM execution engine.
//!
//! The paper's kernel makes one SpMM fast; a serving process has to make
//! *millions of small SpMMs from concurrent clients* fast. The dominant
//! lever (Batched SpMM for GCN, ICASSP 2019; GE-SpMM's row-reuse
//! argument) is coalescing: many narrow per-request multiplies against
//! the same graph become one wide dense-column batch, so every non-zero
//! of the adjacency is fetched once per *batch* instead of once per
//! request, and the wide-lane data path runs at full SIMD width instead
//! of scalar tails.
//!
//! The subsystem has four parts:
//!
//! * [`GraphRegistry`] — named graphs with their plans warmed
//!   (merge-path schedule, row classification, packed indices) and
//!   optional [`GcnModel`]s, with **versioned hot swap**: replacing or
//!   retiring a graph never drains in-flight requests; they complete
//!   against the version they were admitted with.
//! * The **batching scheduler** ([`Server`]'s dispatcher thread) —
//!   coalesces concurrent requests keyed by `(graph, version, workload)`
//!   into dense-column batches bounded by [`ServeConfig::max_batch_cols`]
//!   and [`ServeConfig::max_linger`], executed as a *single* engine run
//!   on the PR-1 worker pool.
//! * **Admission control & backpressure** — bounded per-tenant in-flight
//!   queues rejecting with the typed
//!   [`ServeError::QueueFull`], deadline-aware shedding
//!   ([`ServeError::DeadlineExceeded`]), and graceful degradation to
//!   smaller, zero-linger batches when the queue is deep.
//! * [`ServeStats`] — per-tenant and global counters, batch-size
//!   histogram, p50/p95/p99 latency, and the engine's plan-cache /
//!   dispatch counters in one snapshot.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mpspmm_core::{ExecEngine, MergePathSpmm};
//! use mpspmm_serve::{Request, ServeConfig, Server, Workload};
//! use mpspmm_sparse::{CsrMatrix, DenseMatrix};
//!
//! let engine = Arc::new(ExecEngine::new(1));
//! let server = Server::start(engine, Box::new(MergePathSpmm::new()), ServeConfig::default());
//! let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0f32), (2, 0, 2.0)])?;
//! server.registry().register("demo", a, None);
//!
//! let ticket = server.submit(Request {
//!     graph: "demo".into(),
//!     tenant: "t0".into(),
//!     features: Arc::new(DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f32)),
//!     workload: Workload::Spmm,
//!     deadline: None,
//! })?;
//! let out = ticket.wait()?;
//! assert_eq!(out.get(0, 1), 2.0); // row 0 aggregates node 1's features
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod error;
mod registry;
mod stats;

pub use error::ServeError;
pub use registry::{GraphRegistry, ServedGraph, DEFAULT_PLAN_DIM};
pub use stats::{
    GraphShardStats, GraphTuneStatus, LatencySummary, ServeStats, TenantStats, BATCH_HIST_BUCKETS,
};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpspmm_core::{ExecEngine, SpmmKernel};
use mpspmm_gcn::GcnModel;
use mpspmm_sparse::DenseMatrix;

use batcher::{Pending, ReplySink, Shared};

// Referenced by doc comments.
#[allow(unused_imports)]
use mpspmm_core::EngineStats;

/// Tunables of the batching scheduler and admission control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Dense-column budget per batch: a batch closes once the coalesced
    /// requests reach this many feature columns. One oversized request
    /// still runs (as its own batch).
    pub max_batch_cols: usize,
    /// How long the dispatcher holds a batch open waiting for more
    /// matching requests. Zero disables lingering (a batch takes only
    /// what is already queued).
    pub max_linger: Duration,
    /// Per-tenant bound on admitted-but-unanswered requests; submissions
    /// beyond it are rejected with [`ServeError::QueueFull`].
    pub tenant_queue_limit: usize,
    /// Queue depth beyond which the degraded batching policy applies
    /// (no linger, halved column budget).
    pub pressure_threshold: usize,
    /// Graph-packing mode: within a batch window, admit requests for
    /// *different* small graphs (and ad-hoc inline graphs), assemble
    /// them into one block-diagonal matrix, and run the whole window as
    /// a single mega-batched execution. Off by default — the classic
    /// same-graph column batching is better when traffic concentrates on
    /// few graphs; packing is for the thousands-of-tiny-graphs (Type II
    /// molecular) profile.
    pub pack_graphs: bool,
    /// Constituent-graph budget per packed window: a window closes once
    /// it holds this many graphs. Only read when `pack_graphs` is set.
    pub max_batch_graphs: usize,
    /// Non-zero budget per packed window: a window closes once its
    /// constituents' combined nnz reach this. Also the capacity against
    /// which [`ServeStats::pack_efficiency`] is measured. Only read when
    /// `pack_graphs` is set.
    pub max_batch_nnz: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_cols: 64,
            max_linger: Duration::from_micros(200),
            tenant_queue_limit: 64,
            pressure_threshold: 256,
            pack_graphs: false,
            max_batch_graphs: 256,
            max_batch_nnz: 1 << 20,
        }
    }
}

/// What a request asks the server to compute over its feature block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// One aggregation: `Â × features` through the graph's prepared
    /// plan. Any column width.
    Spmm,
    /// A full GCN forward pass through the graph's registered model;
    /// the block's width must equal the model's input width.
    Gcn,
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Registered graph name to route to.
    pub graph: String,
    /// Tenant identifier for admission control and stats.
    pub tenant: String,
    /// Dense feature block, `nodes × k` (for [`Workload::Gcn`], `k` must
    /// be the model's input width). Shared, not owned: submission is
    /// zero-copy, so one block can fan out to many requests (or graphs)
    /// without duplicating a node-count-sized buffer per request.
    pub features: Arc<DenseMatrix<f32>>,
    /// What to compute.
    pub workload: Workload,
    /// Optional time budget from submission; requests still queued when
    /// it elapses are shed with [`ServeError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

/// Handle to one in-flight request's eventual reply.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<DenseMatrix<f32>, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers.
    pub fn wait(self) -> Result<DenseMatrix<f32>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<DenseMatrix<f32>, ServeError>> {
        match self.rx.try_recv() {
            Ok(res) => Some(res),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// Handle to a whole burst submitted through
/// [`Server::submit_many`]: every admitted request's reply arrives on
/// one shared channel, tagged with its index in the submitted vector.
#[derive(Debug)]
pub struct BurstTicket {
    rx: mpsc::Receiver<batcher::BurstReplies>,
    expected: usize,
    total: usize,
}

impl BurstTicket {
    /// How many requests of the burst were admitted (and will reply).
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Blocks until every admitted request has answered. Slot `i` holds
    /// request `i`'s result, `None` for requests rejected at admission
    /// (their error came back from `submit_many` itself) — or, if the
    /// server died mid-burst, for replies that never arrived.
    pub fn wait_all(self) -> Vec<Option<Result<DenseMatrix<f32>, ServeError>>> {
        let mut out: Vec<Option<Result<DenseMatrix<f32>, ServeError>>> =
            (0..self.total).map(|_| None).collect();
        let mut got = 0usize;
        while got < self.expected {
            // Replies arrive in window-sized groups (see the dispatcher's
            // grouped delivery) — one blocking receive drains a window.
            match self.rx.recv() {
                Ok(replies) => {
                    for (index, result) in replies {
                        out[index] = Some(result);
                        got += 1;
                    }
                }
                Err(_) => break,
            }
        }
        out
    }
}

/// The serving front end: admission control on the caller's thread, one
/// dispatcher thread running the batching scheduler.
pub struct Server {
    shared: Arc<Shared>,
    registry: Arc<GraphRegistry>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server executing on `engine`, planning registered graphs
    /// through `kernel`.
    pub fn start(
        engine: Arc<ExecEngine>,
        kernel: Box<dyn SpmmKernel>,
        config: ServeConfig,
    ) -> Self {
        let registry = Arc::new(GraphRegistry::new(Arc::clone(&engine), kernel));
        let shared = Arc::new(Shared {
            config,
            engine,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: stats::StatsCollector::default(),
            packs: Mutex::new(batcher::PackCache::default()),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mpspmm-serve-dispatch".into())
                .spawn(move || batcher::dispatcher_loop(&shared))
                .expect("spawn dispatcher thread")
        };
        Self {
            shared,
            registry,
            dispatcher: Some(dispatcher),
        }
    }

    /// The graph registry — register/replace/retire graphs here.
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The scheduler configuration this server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Admits `req` (or rejects it with a typed error) and returns the
    /// [`Ticket`] its reply arrives on.
    ///
    /// Admission runs entirely on the caller's thread: graph resolution
    /// (pinning the *current* version for the request's whole lifetime),
    /// shape validation, and the per-tenant bounded-queue check.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`], [`ServeError::UnknownGraph`],
    /// [`ServeError::NoModel`], [`ServeError::BadShape`], or the
    /// backpressure signal [`ServeError::QueueFull`].
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        let pending = self.admit(req, ReplySink::Single(tx))?;
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(pending);
        }
        self.shared.ready.notify_all();
        Ok(Ticket { rx })
    }

    /// **Bulk admission**: admits every request in `reqs` with one queue
    /// lock and one dispatcher wake-up, all replies multiplexed over a
    /// single shared channel. This is the intended front door for
    /// mega-batch clients — a per-request [`submit`](Self::submit) pays
    /// a channel allocation, a queue lock, and a dispatcher notify per
    /// request, which at thousands of tiny graphs per second costs more
    /// than the math.
    ///
    /// Admission checks (graph resolution, shape validation, per-tenant
    /// queue bounds) still run per request; request `i`'s admission
    /// error, if any, lands in slot `i` of the returned vector and no
    /// reply will arrive for it. Admitted requests flow through the
    /// same queue, shedding, and packing windows as singly-submitted
    /// ones — the two entry points are indistinguishable downstream.
    pub fn submit_many(&self, reqs: Vec<Request>) -> (Vec<Option<ServeError>>, BurstTicket) {
        let total = reqs.len();
        let shutdown = self.shared.shutdown.load(Ordering::Acquire);
        let (tx, rx) = mpsc::channel();
        let tx = Arc::new(tx);
        let mut outcomes = Vec::with_capacity(total);
        let mut admitted = Vec::with_capacity(total);
        // One routing-table lock, one clock read, and (via the small
        // per-burst cache below) one tenant-table lock per *distinct*
        // tenant for the whole burst — per-request `admit` would pay
        // all three per request, which at mega-batch rates is real
        // money. Tenant entries are still created lazily, only for
        // requests that pass validation, exactly as in `admit`.
        let graphs = if shutdown {
            Vec::new()
        } else {
            self.registry
                .get_many(reqs.iter().map(|r| r.graph.as_str()))
        };
        let submitted = Instant::now();
        let mut tenant_cache: Vec<(String, Arc<stats::TenantState>)> = Vec::new();
        for (index, (req, graph)) in reqs
            .into_iter()
            .zip(graphs.into_iter().chain(std::iter::repeat(None)))
            .enumerate()
        {
            if shutdown {
                outcomes.push(Some(ServeError::ShuttingDown));
                continue;
            }
            let sink = ReplySink::Tagged {
                tx: Arc::clone(&tx),
                index,
            };
            let tenant = |name: &str| match tenant_cache.iter().find(|(n, _)| n == name) {
                Some((_, t)) => Arc::clone(t),
                None => {
                    let t = self.shared.stats.tenant(name);
                    tenant_cache.push((name.to_string(), Arc::clone(&t)));
                    t
                }
            };
            match self.admit_resolved(req, graph, tenant, submitted, sink) {
                Ok(p) => {
                    admitted.push(p);
                    outcomes.push(None);
                }
                Err(e) => outcomes.push(Some(e)),
            }
        }
        let expected = admitted.len();
        if expected > 0 {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.extend(admitted);
            drop(queue);
            self.shared.ready.notify_all();
        }
        (
            outcomes,
            BurstTicket {
                rx,
                expected,
                total,
            },
        )
    }

    /// Shared admission body of [`submit`](Self::submit) and
    /// [`submit_many`](Self::submit_many): resolves and validates the
    /// request, charges the tenant's queue slot, and returns the queue
    /// entry — the caller enqueues it.
    fn admit(&self, req: Request, reply: ReplySink) -> Result<Pending, ServeError> {
        let graph = self.registry.get(&req.graph);
        let tenant = |name: &str| self.shared.stats.tenant(name);
        self.admit_resolved(req, graph, tenant, Instant::now(), reply)
    }

    /// Admission with the lock-heavy lookups already done (or deferred
    /// into closures) by the caller: [`submit_many`](Self::submit_many)
    /// resolves graphs for the whole burst under one registry lock and
    /// memoizes tenant handles per burst; [`submit`](Self::submit) just
    /// inlines the single lookups. Validation, tenant queue-bound
    /// charging, and counters are identical on both paths.
    fn admit_resolved(
        &self,
        req: Request,
        graph: Option<Arc<registry::ServedGraph>>,
        tenant: impl FnMut(&str) -> Arc<stats::TenantState>,
        submitted: Instant,
        reply: ReplySink,
    ) -> Result<Pending, ServeError> {
        let mut tenant = tenant;
        let graph = graph.ok_or_else(|| ServeError::UnknownGraph(req.graph.clone()))?;
        let expected_cols = match req.workload {
            Workload::Spmm => None,
            Workload::Gcn => Some(
                graph
                    .model()
                    .ok_or_else(|| ServeError::NoModel(req.graph.clone()))?
                    .in_features(),
            ),
        };
        let got = (req.features.rows(), req.features.cols());
        if got.0 != graph.nodes() || expected_cols.is_some_and(|c| c != got.1) {
            return Err(ServeError::BadShape {
                expected_rows: graph.nodes(),
                expected_cols,
                got,
            });
        }
        let tenant = tenant(&req.tenant);
        let limit = self.shared.config.tenant_queue_limit;
        if tenant.in_flight.fetch_add(1, Ordering::AcqRel) >= limit {
            tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
            tenant.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                tenant: req.tenant,
                limit,
            });
        }
        tenant.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Pending {
            graph,
            tenant,
            workload: req.workload,
            features: req.features,
            submitted,
            deadline: req.deadline.map(|d| submitted + d),
            reply,
        })
    }

    /// Admits a **one-shot inline request**: an ad-hoc graph that was
    /// never registered, carried by the request itself. The graph is
    /// planned on the caller's thread (outside the engine's LRU plan
    /// cache — one-shot graphs must not evict long-lived plans) and then
    /// flows through the same queue, deadline shedding, and — when
    /// [`ServeConfig::pack_graphs`] is on — the same block-diagonal
    /// packing windows as registered graphs. Inline requests are
    /// [`Workload::Spmm`] only: a GCN forward needs a registered model.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`], [`ServeError::BadShape`] (the
    /// feature block's rows must match the adjacency's columns), or
    /// [`ServeError::QueueFull`].
    pub fn submit_inline(
        &self,
        tenant: &str,
        adjacency: mpspmm_sparse::CsrMatrix<f32>,
        features: Arc<DenseMatrix<f32>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if features.rows() != adjacency.cols() {
            return Err(ServeError::BadShape {
                expected_rows: adjacency.cols(),
                expected_cols: None,
                got: (features.rows(), features.cols()),
            });
        }
        let tenant_state = self.shared.stats.tenant(tenant);
        let limit = self.shared.config.tenant_queue_limit;
        if tenant_state.in_flight.fetch_add(1, Ordering::AcqRel) >= limit {
            tenant_state.in_flight.fetch_sub(1, Ordering::AcqRel);
            tenant_state
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .rejected_queue_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                tenant: tenant.to_string(),
                limit,
            });
        }
        tenant_state.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let graph = self.registry.inline_graph(adjacency);
        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            graph,
            tenant: tenant_state,
            workload: Workload::Spmm,
            features,
            submitted,
            deadline: deadline.map(|d| submitted + d),
            reply: ReplySink::Single(tx),
        };
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(pending);
        }
        self.shared.ready.notify_all();
        Ok(Ticket { rx })
    }

    /// Convenience: register a graph (optionally with a model) on this
    /// server's registry. Equivalent to `self.registry().register(...)`.
    pub fn register(
        &self,
        name: &str,
        adjacency: mpspmm_sparse::CsrMatrix<f32>,
        model: Option<GcnModel>,
    ) -> Arc<ServedGraph> {
        self.registry.register(name, adjacency, model)
    }

    /// Convenience: register a graph for **sharded** scale-out serving —
    /// `shards` row bands, each with a private engine running
    /// `total_workers / shards` workers. Equivalent to
    /// `self.registry().register_sharded(...)`; see
    /// [`GraphRegistry::register_sharded`].
    pub fn register_sharded(
        &self,
        name: &str,
        adjacency: mpspmm_sparse::CsrMatrix<f32>,
        model: Option<GcnModel>,
        shards: usize,
        total_workers: usize,
    ) -> Arc<ServedGraph> {
        self.registry
            .register_sharded(name, adjacency, model.map(Arc::new), shards, total_workers)
    }

    /// Snapshot of the serving counters, including the engine's and —
    /// when the engine carries an auto-tuner — the per-graph tuning
    /// progress.
    pub fn stats(&self) -> ServeStats {
        let depth = self.shared.queue.lock().unwrap().len();
        self.shared.stats.snapshot(
            depth,
            self.shared.engine.stats(),
            self.registry.tune_statuses(),
            self.registry.shard_statuses(),
        )
    }

    /// Stops admitting requests, answers everything already queued, and
    /// joins the dispatcher.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.shared.config)
            .field("registry", &self.registry)
            .finish()
    }
}
