//! Per-engine buffer arena: pooled output / scratch buffers so
//! steady-state inference performs no heap allocation.
//!
//! Every [`crate::ExecEngine`] execution needs a dense output buffer
//! (`rows × dim` f32s), the pooled path additionally per-worker
//! shared-row scratch strips, the column-striped path one
//! `(carries + 1) × dim` accumulator block carved into per-stripe
//! windows, and the batch path an interleaved combined buffer plus
//! per-block outputs. Before this arena each run
//! allocated (and dropped) all of them; under serving traffic that is
//! pure allocator churn on buffers whose sizes repeat forever, because
//! the graph and feature dimensions of a tenant are stationary. The
//! arena keeps a small pool of retired buffers per kind and hands them
//! back out by best capacity fit, so the steady state is 100% reuse.
//!
//! Alignment: fresh f32 buffers are allocated with capacities rounded up
//! to whole 64-byte cache lines, so the allocator serves them from
//! stable size classes (large ones page-aligned) and reuse preserves the
//! original placement run over run.
//!
//! Ownership of outputs *leaves* the engine as [`DenseMatrix`] values
//! (which demand a plain `Vec<f32>`), so reuse of those is cooperative:
//! callers that are done with a result hand it back via
//! [`crate::ExecEngine::recycle`]. The GCN forward pass uses exactly
//! this to ping-pong two inter-layer activation buffers.
//!
//! [`DenseMatrix`]: mpspmm_sparse::DenseMatrix

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Retired buffers kept per pool; beyond this the smallest is dropped.
/// Serving batches split into at most a handful of per-tenant blocks, so
/// eight covers every concurrent shape seen in practice.
const MAX_POOLED: usize = 8;

/// f32 elements per 64-byte cache line.
const LINE_F32: usize = 16;

/// The engine's buffer pool. See the module docs for the design; all
/// methods are `&self` and internally locked, matching the engine's
/// share-one-instance concurrency model. Lock hold times are O(pool
/// size) scans — zeroing happens outside the lock.
#[derive(Debug, Default)]
pub(crate) struct BufferArena {
    outputs: Mutex<Vec<Vec<f32>>>,
    /// `u32` scratch (SpGEMM column/key buffers) pooled separately from
    /// the f32 outputs so the two kinds never evict each other.
    indices: Mutex<Vec<Vec<u32>>>,
    reuses: AtomicU64,
    misses: AtomicU64,
}

/// Pops the best (smallest sufficient) capacity fit from `pool`, or the
/// overall smallest entry (to be dropped by the caller) when nothing
/// fits and the pool is full.
fn pop_fit<T>(pool: &mut Vec<T>, capacity: impl Fn(&T) -> usize, need: usize) -> Option<(T, bool)> {
    let mut best: Option<(usize, usize)> = None; // (index, capacity)
    let mut smallest: Option<(usize, usize)> = None;
    for (i, item) in pool.iter().enumerate() {
        let cap = capacity(item);
        if cap >= need && best.is_none_or(|(_, c)| cap < c) {
            best = Some((i, cap));
        }
        if smallest.is_none_or(|(_, c)| cap < c) {
            smallest = Some((i, cap));
        }
    }
    if let Some((i, _)) = best {
        return Some((pool.swap_remove(i), true));
    }
    // Nothing fits: evict the smallest if the pool is at capacity so it
    // self-corrects toward the sizes actually in use.
    if pool.len() >= MAX_POOLED {
        let (i, _) = smallest?;
        return Some((pool.swap_remove(i), false));
    }
    None
}

impl BufferArena {
    /// Checks out a zeroed `Vec<f32>` of exactly `len` elements, reusing
    /// a pooled buffer when one is large enough.
    pub(crate) fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let popped = pop_fit(&mut self.outputs.lock().unwrap(), Vec::capacity, len);
        match popped {
            Some((mut buf, true)) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            _ => {
                // `popped` may hold an evicted too-small buffer; drop it.
                self.misses.fetch_add(1, Ordering::Relaxed);
                let mut buf = Vec::with_capacity(len.next_multiple_of(LINE_F32));
                buf.resize(len, 0.0);
                buf
            }
        }
    }

    /// Checks out an **empty** `Vec<f32>` with capacity at least `cap`,
    /// reusing a pooled buffer when one is large enough. For push-style
    /// producers (the SpGEMM numeric phase) that would only overwrite a
    /// zeroed prefix anyway.
    pub(crate) fn take_cleared(&self, cap: usize) -> Vec<f32> {
        let popped = pop_fit(&mut self.outputs.lock().unwrap(), Vec::capacity, cap);
        match popped {
            Some((mut buf, true)) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap.next_multiple_of(LINE_F32))
            }
        }
    }

    /// Checks out an **empty** `Vec<u32>` with capacity at least `cap`
    /// from the index pool.
    pub(crate) fn take_indices(&self, cap: usize) -> Vec<u32> {
        let popped = pop_fit(&mut self.indices.lock().unwrap(), Vec::capacity, cap);
        match popped {
            Some((mut buf, true)) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Returns a `u32` scratch buffer to the index pool (dropped if the
    /// pool is full and every pooled buffer is at least as large).
    pub(crate) fn put_indices(&self, buf: Vec<u32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.indices.lock().unwrap();
        if pool.len() >= MAX_POOLED {
            if let Some((i, _)) = pool
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .min_by_key(|&(_, c)| c)
            {
                if pool[i].capacity() < buf.capacity() {
                    pool[i] = buf;
                }
                return;
            }
        }
        pool.push(buf);
    }

    /// Returns an output buffer to the pool (dropped if the pool is full
    /// and every pooled buffer is at least as large).
    pub(crate) fn put(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.outputs.lock().unwrap();
        if pool.len() >= MAX_POOLED {
            // Keep the MAX_POOLED largest buffers.
            if let Some((i, _)) = pool
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .min_by_key(|&(_, c)| c)
            {
                if pool[i].capacity() < buf.capacity() {
                    pool[i] = buf;
                }
                return;
            }
        }
        pool.push(buf);
    }

    /// Executions served from the pool without allocating.
    pub(crate) fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Executions that had to allocate a fresh buffer.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops all pooled buffers and zeroes the counters.
    pub(crate) fn clear(&self) {
        self.outputs.lock().unwrap().clear();
        self.indices.lock().unwrap().clear();
        self.reuses.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_roundtrip_reuses_capacity() {
        let arena = BufferArena::default();
        let a = arena.take_zeroed(100);
        assert_eq!(arena.misses(), 1);
        arena.put(a);
        let b = arena.take_zeroed(80);
        assert_eq!(arena.reuses(), 1, "smaller request reuses the buffer");
        assert_eq!(b.len(), 80);
        assert!(b.iter().all(|&v| v == 0.0));
        arena.put(b);
        let c = arena.take_zeroed(200);
        assert_eq!(arena.misses(), 2, "larger request allocates fresh");
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn take_zeroed_clears_dirty_recycled_buffers() {
        let arena = BufferArena::default();
        let mut a = arena.take_zeroed(16);
        a.iter_mut().for_each(|v| *v = 7.0);
        arena.put(a);
        let b = arena.take_zeroed(16);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_is_bounded_and_prefers_large_buffers() {
        let arena = BufferArena::default();
        for len in 1..=(2 * MAX_POOLED) {
            arena.put(vec![0.0; len * 16]);
        }
        let pooled = arena.outputs.lock().unwrap().len();
        assert_eq!(pooled, MAX_POOLED);
        // The survivors are the largest ones: a request for the largest
        // size must hit.
        let _ = arena.take_zeroed(2 * MAX_POOLED * 16);
        assert_eq!(arena.reuses(), 1);
    }

    #[test]
    fn take_cleared_returns_empty_with_capacity() {
        let arena = BufferArena::default();
        let mut a = arena.take_cleared(100);
        assert!(a.is_empty());
        assert!(a.capacity() >= 100);
        a.extend_from_slice(&[1.0; 50]);
        arena.put(a);
        let b = arena.take_cleared(40);
        assert!(b.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(arena.reuses(), 1);
    }

    #[test]
    fn index_pool_roundtrip_is_separate_from_outputs() {
        let arena = BufferArena::default();
        let mut a = arena.take_indices(64);
        assert!(a.is_empty());
        assert!(a.capacity() >= 64);
        a.push(7);
        arena.put_indices(a);
        let b = arena.take_indices(32);
        assert!(b.is_empty());
        assert_eq!(arena.reuses(), 1);
        // The f32 pool stays cold: this request must miss.
        let _ = arena.take_zeroed(8);
        assert_eq!(arena.misses(), 2);
    }

    #[test]
    fn clear_resets_pools_and_counters() {
        let arena = BufferArena::default();
        arena.put(vec![0.0; 64]);
        let _ = arena.take_zeroed(8);
        arena.clear();
        assert_eq!(arena.reuses(), 0);
        assert_eq!(arena.misses(), 0);
        let _ = arena.take_zeroed(8);
        assert_eq!(arena.misses(), 1);
    }
}
