//! Table II — the evaluation datasets.
//!
//! Synthesizes every Table II graph and prints the published vs realized
//! structural parameters, verifying the generators honour the specs
//! (nodes, non-zeros, and max degree exactly; average degree by
//! construction). Default mode scales the largest graphs down; pass
//! `--full` to synthesize all 23 at their published sizes.

use mpspmm_bench::{banner, full_size_requested, load};
use mpspmm_graphs::table_ii;
use mpspmm_sparse::stats::DegreeStats;

fn main() {
    let full = full_size_requested();
    banner("Table II", "sparse input graphs used for evaluation", full);

    println!(
        "\n{:<4} {:<16} {:>10} {:>10} {:>9} {:>9} {:>7} {:>7}",
        "Type", "Graph", "#Nodes", "#Non-zeros", "Avg.Deg.", "Max.Deg.", "Gini", "match"
    );
    let mut all_ok = true;
    for spec in table_ii() {
        let (used, a) = load(spec, full);
        let stats = DegreeStats::compute(&a);
        let scaled = used.nnz != spec.nnz;
        let ok = stats.rows == used.nodes && stats.nnz == used.nnz && stats.max == used.max_degree;
        all_ok &= ok;
        println!(
            "{:<4} {:<16} {:>10} {:>10} {:>9.1} {:>9} {:>7.3} {:>7}",
            match used.class {
                mpspmm_graphs::GraphClass::PowerLaw => "I",
                mpspmm_graphs::GraphClass::Structured => "II",
            },
            if scaled {
                format!("{}*", used.name)
            } else {
                used.name.to_string()
            },
            stats.rows,
            stats.nnz,
            stats.avg,
            stats.max,
            stats.gini,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    if !full {
        println!("\n(* scaled 1/4 for tractability; rerun with --full for published sizes)");
    }
    println!(
        "\nall realized graphs match their specs: {}",
        if all_ok { "yes" } else { "NO" }
    );
    println!(
        "Paper reference row: Nell has 65,755 nodes, 251,550 non-zeros, \
         avg degree 3.8, and a 4,549-non-zero evil row."
    );
}
