//! Exploring the merge-path cost trade-off on the GPU machine model.
//!
//! The merge-path cost (work items per thread) trades parallelism against
//! synchronization (§III-C): low cost → many threads but more partial rows
//! (atomics); high cost → few atomics but fewer warps to hide latency.
//! This example sweeps the cost on a power-law graph and prints the
//! resulting thread counts, atomic shares, and simulated kernel times with
//! the binding resource.
//!
//! Run with: `cargo run --release --example cost_tuning`

use merge_path_spmm::core::{MergePathSpmm, SpmmKernel};
use merge_path_spmm::graphs::{DatasetSpec, GraphClass};
use merge_path_spmm::simt::{GpuConfig, GpuKernel};

fn main() {
    let spec = DatasetSpec::custom("tune-me", GraphClass::PowerLaw, 30_000, 150_000, 2_000);
    let a = spec.synthesize(7);
    let dim = 16;
    let cfg = GpuConfig::rtx6000();
    println!(
        "graph: {} nodes, {} nnz, max degree {} | dim {dim} on the simulated RTX 6000\n",
        a.rows(),
        a.nnz(),
        2_000
    );

    println!(
        "{:>5} {:>9} {:>7} {:>13} {:>11} {:>10}",
        "cost", "threads", "warps", "atomic nnz %", "kernel µs", "bound"
    );
    let mut best = (0usize, f64::INFINITY);
    for cost in [2usize, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100] {
        let kernel = MergePathSpmm::with_cost(cost);
        let plan = kernel.plan(&a, dim);
        let stats = plan.write_stats();
        let report = GpuKernel::MergePath { cost: Some(cost) }.simulate(&a, dim, &cfg);
        println!(
            "{cost:>5} {:>9} {:>7} {:>12.1}% {:>11.2} {:>10}",
            plan.num_threads(),
            report.warps,
            100.0 * stats.atomic_nnz_fraction(),
            report.micros,
            format!("{:?}", report.bound),
        );
        if report.micros < best.1 {
            best = (cost, report.micros);
        }
    }
    println!(
        "\nbest cost for this graph at dim {dim}: {} ({:.2} µs)",
        best.0, best.1
    );
    println!(
        "note the two failure modes: tiny costs drown in atomic updates, \
         huge costs starve the GPU of warps (latency-bound)."
    );
}
