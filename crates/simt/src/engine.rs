//! The deterministic SIMT timing engine.
//!
//! The engine prices a lowered [`KernelRun`] on a [`GpuConfig`] using a
//! bounded-resource model that captures the three first-order effects the
//! paper's evaluation turns on:
//!
//! 1. **Parallelism vs. latency hiding** — each warp's serial chain
//!    (instructions + exposed memory latency + atomic latency) can only be
//!    overlapped by the other warps resident on the same SM, up to the
//!    SM's warp-slot capacity. Few warps ⇒ latency-bound; many warps ⇒
//!    throughput-bound.
//! 2. **Atomic contention** — atomics targeting the same output row
//!    serialize at the L2 (per-row serialization bound), which is what
//!    punishes GNNAdvisor's indiscriminate atomics on evil rows.
//! 3. **Serial fix-up** — carry flushes execute on a single thread after
//!    the barrier; their cost scales with the carry count times the
//!    dimension, which is what sinks merge-path-with-serial-fixup for
//!    SpMM.
//!
//! A shared DRAM-bandwidth bound covers the streaming traffic, with a
//! skew-aware cache model for the scattered `XW` row reads.

use crate::config::GpuConfig;
use crate::warp::KernelRun;

/// Which resource bound determined the parallel-phase time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// SM instruction-issue throughput.
    Issue,
    /// Warp serial chains vs. available latency hiding.
    Latency,
    /// DRAM bandwidth.
    Bandwidth,
    /// Per-row atomic serialization.
    Atomic,
}

/// Timing result for one simulated kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total kernel cycles (launch + parallel phase + serial phase).
    pub cycles: f64,
    /// Total kernel time in microseconds at the machine clock.
    pub micros: f64,
    /// Parallel-phase cycles.
    pub parallel_cycles: f64,
    /// Serial fix-up phase cycles (zero unless the kernel carries).
    pub serial_cycles: f64,
    /// Fixed launch overhead cycles.
    pub launch_cycles: f64,
    /// The binding resource of the parallel phase.
    pub bound: Bound,
    /// Individual bound values (cycles) for analysis.
    pub issue_bound: f64,
    /// Latency-hiding bound (cycles).
    pub latency_bound: f64,
    /// DRAM bandwidth bound (cycles).
    pub bandwidth_bound: f64,
    /// Per-row atomic serialization bound (cycles).
    pub atomic_bound: f64,
    /// Number of warps launched.
    pub warps: usize,
}

/// Instructions per lockstep non-zero step (one FMA plus one load issue).
const INSTR_PER_STEP: f64 = 2.0;
/// Instructions per regular flush / per carry store.
const INSTR_PER_FLUSH: f64 = 1.0;
/// Instructions per atomic flush (address setup + RMW issue).
const INSTR_PER_ATOMIC: f64 = 2.0;
/// Fixed per-warp bookkeeping instructions (bounds computation, prologue).
const WARP_OVERHEAD_INSTR: f64 = 20.0;

/// Prices a kernel run on the machine.
pub fn simulate(run: &KernelRun, cfg: &GpuConfig) -> SimReport {
    let slice_dims = run.dim.min(cfg.lanes) as f64;
    let slice_bytes = slice_dims * 4.0;

    // Cache model for scattered XW-row accesses: the working set is the
    // whole XW operand; power-law access skew concentrates hits on hub
    // rows, modeled by the sublinear hit exponent.
    let xw_bytes = (run.xw_rows * run.dim) as f64 * 4.0;
    let p_hit = if xw_bytes <= cfg.l2_bytes || xw_bytes == 0.0 {
        1.0
    } else {
        (cfg.l2_bytes / xw_bytes).powf(cfg.hit_exponent)
    };
    let eff_latency = p_hit * cfg.l2_latency + (1.0 - p_hit) * cfg.mem_latency;

    // Atomic transactions below a cache-sector's worth of elements still
    // pay for the full sector at the L2.
    let atomic_unit = slice_dims.max(cfg.min_atomic_unit);

    // Contention profile: atomics to hot rows wait behind each other, so
    // their round-trip latency inflates with the number of flushes the row
    // receives (capped — the L2 pipeline depth bounds the queue).
    let row_counts = run.atomic_row_counts();
    let contended_latency = |row: usize| -> f64 {
        let count = row_counts.get(&row).copied().unwrap_or(1) as f64;
        cfg.atomic_latency
            * (1.0 + count / cfg.atomic_contention_scale).min(cfg.atomic_contention_cap)
    };

    // Per-SM accumulation (warps assigned round-robin, as the hardware
    // block scheduler does for a grid of uniform blocks).
    let sms = cfg.sms.max(1);
    let mut sm_instr = vec![0.0f64; sms];
    let mut sm_chain = vec![0.0f64; sms];
    let mut sm_count = vec![0usize; sms];
    let mut sm_max_chain = vec![0.0f64; sms];
    let mut dram_bytes = 0.0f64;
    let mut total_atomic_flushes = 0u64;
    let mut active = 0usize;
    for (i, w) in run.warps.iter().filter(|w| !w.is_empty()).enumerate() {
        active += 1;
        let s = i % sms;
        let instr = WARP_OVERHEAD_INSTR
            + w.steps as f64 * INSTR_PER_STEP
            + w.regular_flushes as f64 * INSTR_PER_FLUSH
            + w.carry_flushes as f64 * INSTR_PER_FLUSH
            + w.atomic_rows.len() as f64 * INSTR_PER_ATOMIC;
        // A warp stalls once per lockstep load *instruction* — packed
        // lanes fetch their different XW rows under a single instruction —
        // so the latency chain scales with `steps`, not with the lane-level
        // `mem_ops` (which feed the bandwidth term instead). This is the
        // mechanism behind GNNAdvisor-opt's §V gain: packing halves the
        // stall chain at dimension 16. Sub-warp packing adds a divergence
        // overhead (independent-thread-scheduling reconvergence).
        let divergence = 1.0 + cfg.divergence_per_packed * (w.packed.max(1) - 1) as f64;
        // Independent RMWs from one warp overlap partially in the memory
        // system: charge the slowest in full and half of the rest.
        let atomic_chain = {
            let mut lats: Vec<f64> = w
                .atomic_rows
                .iter()
                .map(|&r| contended_latency(r))
                .collect();
            lats.sort_unstable_by(|a, b| b.partial_cmp(a).expect("latencies are finite"));
            match lats.split_first() {
                Some((max, rest)) => max + 0.5 * rest.iter().sum::<f64>(),
                None => 0.0,
            }
        };
        let chain =
            instr + cfg.warp_overhead + w.steps as f64 * eff_latency * divergence + atomic_chain;
        sm_instr[s] += instr;
        sm_chain[s] += chain;
        sm_count[s] += 1;
        sm_max_chain[s] = sm_max_chain[s].max(chain);
        total_atomic_flushes += w.atomic_rows.len() as u64;
        // DRAM traffic per warp: the A value/index stream (8 B per fetch)
        // and the capacity misses of the scattered XW reads. Flushes
        // resolve at the L2 (atomics are L2 read-modify-writes on this
        // GPU generation) — their DRAM cost is the one-time output
        // write-back added below.
        dram_bytes += w.mem_ops as f64 * 8.0 + w.mem_ops as f64 * (1.0 - p_hit) * slice_bytes;
    }
    // Compulsory traffic: XW is read at least once and the output written
    // back once (a kernel that does nothing touches nothing).
    if active > 0 {
        dram_bytes += xw_bytes + (run.out_rows * run.dim) as f64 * 4.0;
    }

    let mut issue_bound = 0.0f64;
    let mut latency_bound = 0.0f64;
    for s in 0..sms {
        if sm_count[s] == 0 {
            continue;
        }
        issue_bound = issue_bound.max(sm_instr[s] / cfg.issue_per_cycle);
        let hiding = sm_count[s].min(cfg.warp_slots) as f64;
        // Makespan of the SM's warp set: total work spread over the
        // hiding capacity plus the longest-chain tail (LPT-style bound).
        // Balanced decompositions pay almost nothing for the tail;
        // row-wise kernels with evil rows pay nearly the whole evil chain.
        let makespan = sm_chain[s] / hiding + sm_max_chain[s] * (1.0 - 1.0 / hiding);
        latency_bound = latency_bound.max(makespan);
    }
    let bandwidth_bound = dram_bytes / cfg.dram_bytes_per_cycle;
    // Atomic serialization has two faces: all flushes share the L2's
    // atomic pipelines (throughput bound), and flushes to the *same*
    // output row serialize on its addresses (per-row bound) — the evil-row
    // penalty of indiscriminate atomics.
    let atomic_throughput_bound =
        total_atomic_flushes as f64 * atomic_unit / cfg.atomic_throughput_elems;
    let atomic_row_bound = row_counts
        .values()
        .map(|&c| c as f64 * cfg.atomic_serialize)
        .fold(0.0, f64::max);
    let atomic_bound = atomic_throughput_bound.max(atomic_row_bound);

    let (parallel_cycles, bound) = [
        (issue_bound, Bound::Issue),
        (latency_bound, Bound::Latency),
        (bandwidth_bound, Bound::Bandwidth),
        (atomic_bound, Bound::Atomic),
    ]
    .into_iter()
    .fold((0.0, Bound::Issue), |best, cand| {
        if cand.0 > best.0 {
            cand
        } else {
            best
        }
    });

    // Serial fix-up: one thread walks the carry list; each carry costs the
    // dimension-wide vector add (one instruction per lane slice) plus the
    // fully exposed access latency — nothing hides it.
    let slices = (run.dim as f64 / cfg.lanes as f64).ceil().max(1.0);
    let serial_cycles =
        run.total_carries as f64 * (slices * INSTR_PER_FLUSH + cfg.serial_fixup_latency);

    let cycles = cfg.launch_overhead + parallel_cycles + serial_cycles;
    SimReport {
        cycles,
        micros: cfg.cycles_to_micros(cycles),
        parallel_cycles,
        serial_cycles,
        launch_cycles: cfg.launch_overhead,
        bound,
        issue_bound,
        latency_bound,
        bandwidth_bound,
        atomic_bound,
        warps: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::WarpWork;

    fn run_with(warps: Vec<WarpWork>, dim: usize, xw_rows: usize) -> KernelRun {
        let total_carries = warps.iter().map(|w| w.carry_flushes).sum();
        KernelRun {
            warps,
            dim,
            xw_rows,
            out_rows: xw_rows,
            total_carries,
        }
    }

    fn uniform_warps(n: usize, steps: u64) -> Vec<WarpWork> {
        (0..n)
            .map(|_| WarpWork {
                steps,
                mem_ops: steps,
                regular_flushes: 1,
                ..WarpWork::default()
            })
            .collect()
    }

    #[test]
    fn deterministic() {
        let cfg = GpuConfig::rtx6000();
        let run = run_with(uniform_warps(500, 20), 32, 10_000);
        assert_eq!(simulate(&run, &cfg), simulate(&run, &cfg));
    }

    #[test]
    fn more_warps_hide_latency_better() {
        // Same total work split into more warps finishes faster until
        // occupancy saturates.
        let cfg = GpuConfig::rtx6000();
        let few = simulate(&run_with(uniform_warps(72, 400), 32, 10_000), &cfg);
        let many = simulate(&run_with(uniform_warps(720, 40), 32, 10_000), &cfg);
        assert!(
            many.parallel_cycles < few.parallel_cycles,
            "many: {} vs few: {}",
            many.parallel_cycles,
            few.parallel_cycles
        );
    }

    #[test]
    fn atomic_contention_on_one_row_serializes() {
        let cfg = GpuConfig::rtx6000();
        let contended: Vec<WarpWork> = (0..2000)
            .map(|_| WarpWork {
                steps: 2,
                mem_ops: 2,
                atomic_rows: vec![0],
                ..WarpWork::default()
            })
            .collect();
        let spread: Vec<WarpWork> = (0..2000)
            .map(|i| WarpWork {
                steps: 2,
                mem_ops: 2,
                atomic_rows: vec![i],
                ..WarpWork::default()
            })
            .collect();
        let hot = simulate(&run_with(contended, 16, 1_000), &cfg);
        let cold = simulate(&run_with(spread, 16, 1_000), &cfg);
        assert!(hot.parallel_cycles > cold.parallel_cycles);
        assert_eq!(hot.bound, Bound::Atomic);
    }

    #[test]
    fn serial_phase_scales_with_carries() {
        let cfg = GpuConfig::rtx6000();
        let mut warps = uniform_warps(100, 10);
        for w in warps.iter_mut().take(50) {
            w.carry_flushes = 2;
        }
        let with_carries = simulate(&run_with(warps, 16, 1_000), &cfg);
        let without = simulate(&run_with(uniform_warps(100, 10), 16, 1_000), &cfg);
        assert_eq!(
            with_carries.serial_cycles,
            100.0 * (1.0 + cfg.serial_fixup_latency)
        );
        assert_eq!(without.serial_cycles, 0.0);
        assert!(with_carries.cycles > without.cycles);
    }

    #[test]
    fn cache_model_degrades_with_working_set() {
        let cfg = GpuConfig::rtx6000();
        // Small XW fits in L2 → cheap; giant XW spills → expensive.
        let fits = simulate(&run_with(uniform_warps(720, 40), 16, 10_000), &cfg);
        let spills = simulate(&run_with(uniform_warps(720, 40), 16, 10_000_000), &cfg);
        assert!(spills.parallel_cycles > fits.parallel_cycles);
    }

    #[test]
    fn empty_run_costs_only_launch() {
        let cfg = GpuConfig::rtx6000();
        let report = simulate(&run_with(vec![], 16, 100), &cfg);
        assert_eq!(report.cycles, cfg.launch_overhead);
        assert_eq!(report.warps, 0);
    }

    #[test]
    fn bandwidth_bound_engages_for_streaming_kernels() {
        let mut cfg = GpuConfig::rtx6000();
        cfg.dram_bytes_per_cycle = 1.0; // strangle bandwidth
        let report = simulate(&run_with(uniform_warps(7200, 100), 32, 1_000_000), &cfg);
        assert_eq!(report.bound, Bound::Bandwidth);
    }
}
