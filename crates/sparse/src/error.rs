use std::error::Error;
use std::fmt;

/// Error returned when constructing a sparse matrix from invalid data.
///
/// Each variant identifies the precise structural violation so that callers
/// (and tests) can assert on the failure mode rather than on a message
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseFormatError {
    /// The row pointer array must have exactly `rows + 1` entries.
    RowPointerLength {
        /// Number of matrix rows.
        rows: usize,
        /// Observed length of the row pointer array.
        len: usize,
    },
    /// The row pointer array must start at zero.
    RowPointerStart {
        /// Observed first entry.
        first: usize,
    },
    /// The row pointer array must be non-decreasing.
    RowPointerNotMonotonic {
        /// First row index `i` where `row_ptr[i] > row_ptr[i + 1]`.
        row: usize,
    },
    /// The final row pointer entry must equal the number of stored values.
    RowPointerEnd {
        /// Observed final entry.
        last: usize,
        /// Number of stored non-zeros.
        nnz: usize,
    },
    /// Column index and value arrays must have the same length.
    IndexValueLength {
        /// Length of the column index array.
        indices: usize,
        /// Length of the value array.
        values: usize,
    },
    /// A column index is out of bounds.
    ColumnOutOfBounds {
        /// Offending non-zero position within the index array.
        position: usize,
        /// The out-of-range column index.
        column: usize,
        /// Number of matrix columns.
        cols: usize,
    },
    /// A row index is out of bounds (COO / triplet construction).
    RowOutOfBounds {
        /// Offending triplet position.
        position: usize,
        /// The out-of-range row index.
        row: usize,
        /// Number of matrix rows.
        rows: usize,
    },
    /// Column indices within a row must be strictly increasing
    /// (sorted, no duplicates).
    UnsortedRow {
        /// Row containing the violation.
        row: usize,
        /// Position in the index array where order breaks.
        position: usize,
    },
    /// A batched operation was given zero constituents.
    EmptyBatch,
    /// Two matrices have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
}

impl fmt::Display for SparseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RowPointerLength { rows, len } => write!(
                f,
                "row pointer array has length {len} but must have length rows + 1 = {}",
                rows + 1
            ),
            Self::RowPointerStart { first } => {
                write!(f, "row pointer array starts at {first} but must start at 0")
            }
            Self::RowPointerNotMonotonic { row } => write!(
                f,
                "row pointer array decreases between rows {row} and {}",
                row + 1
            ),
            Self::RowPointerEnd { last, nnz } => write!(
                f,
                "final row pointer entry is {last} but {nnz} non-zeros are stored"
            ),
            Self::IndexValueLength { indices, values } => write!(
                f,
                "column index array has length {indices} but value array has length {values}"
            ),
            Self::ColumnOutOfBounds {
                position,
                column,
                cols,
            } => write!(
                f,
                "column index {column} at position {position} is out of bounds for {cols} columns"
            ),
            Self::RowOutOfBounds {
                position,
                row,
                rows,
            } => write!(
                f,
                "row index {row} at position {position} is out of bounds for {rows} rows"
            ),
            Self::UnsortedRow { row, position } => write!(
                f,
                "column indices of row {row} are not strictly increasing at position {position}"
            ),
            Self::EmptyBatch => {
                write!(f, "batched operation requires at least one constituent")
            }
            Self::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: left operand is {}x{}, right operand is {}x{}",
                left.0, left.1, right.0, right.1
            ),
        }
    }
}

impl Error for SparseFormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let err = SparseFormatError::RowPointerLength { rows: 3, len: 2 };
        let msg = err.to_string();
        assert!(msg.contains("length 2"));
        assert!(msg.contains('4'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseFormatError>();
    }

    #[test]
    fn shape_mismatch_reports_both_shapes() {
        let err = SparseFormatError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }
}
