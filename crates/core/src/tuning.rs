//! Thread-count and SIMD-mapping heuristics (§III-C of the paper).
//!
//! The SpMM kernel's dense dimension `d` must be mapped onto the SIMD width
//! of the machine (32 lanes per warp on the evaluated GPU). §III-C
//! distinguishes three regimes — `d == lanes`, `d > lanes` (replicate each
//! logical thread across several warps), and `d < lanes` (pack several
//! logical threads into one warp) — and ties the *merge-path cost* (work
//! per thread) to the regime via an empirical table (Figure 6).

/// Minimum logical-thread floor for small graphs (§III-C1: "When the
/// computed threads are below a threshold (e.g., 1024), the total thread
/// count is set to the threshold value").
pub const MIN_THREADS: usize = 1024;

/// Degree-adaptive dispatch threshold of the CPU data path: segments with
/// at most this many non-zeros run the gather microkernel; longer
/// segments run the streaming panel kernel. Power-law graphs put most
/// rows (but few non-zeros) below this line, which is exactly the regime
/// where per-panel loop restarts cost more than the segment's arithmetic.
pub const GATHER_MAX_NNZ: usize = 4;

/// Stealable chunks carved per worker by the work-stealing scheduler.
///
/// The plan is pre-split into `workers × this` nnz-balanced
/// [`ChunkDesc`](crate::ChunkDesc)s (capped at one logical thread per
/// chunk): enough granularity that an idle worker can always relieve the
/// critical path, few enough that deque traffic stays negligible next to
/// a chunk's arithmetic. 4–8 is the classic work-stealing sweet spot; 6
/// measured best on the power-law suite.
pub const STEAL_CHUNKS_PER_WORKER: usize = 6;

/// Static-span nnz skew (max/mean, see
/// [`static_span_skew`](crate::static_span_skew)) above which
/// [`SchedPolicy::Auto`](crate::SchedPolicy) switches from the static
/// scheduler to work stealing. Merge-path plans sit at ~1.0–1.13 and stay
/// on the bit-identical static fast path; clustered row-split plans on
/// power-law graphs exceed this by multiples.
pub const STEAL_SKEW_THRESHOLD: f64 = 1.25;

/// Dense dimension at or above which [`SchedPolicy::Auto`](crate::SchedPolicy)
/// unconditionally selects the column-striped executor: each worker owns a
/// contiguous feature-column stripe of *all* rows, so shared-row handling
/// (atomics, carries, strip folding) disappears entirely. Below this the
/// redundant per-stripe index walk is not paid for by the dense-axis work;
/// at 128+ columns each non-zero funds ≥ 256 flops per stripe and the
/// stripe path wins on every measured shape.
pub const STRIPE_MIN_DIM: usize = 128;

/// Dense dimension from which [`SchedPolicy::Auto`](crate::SchedPolicy)
/// selects column striping when the static partition is *also* skewed
/// (`static_span_skew` above [`STEAL_SKEW_THRESHOLD`]): striping fixes the
/// imbalance bit-exactly — every worker walks the same non-zeros — without
/// the stealing scheduler's serial fix-up replay, whose cost scales with
/// the dense dimension.
pub const STRIPE_SKEW_MIN_DIM: usize = 96;

/// Measurements the online auto-tuner takes of every surviving arm per
/// successive-halving round (see `crate::tuner`). Two samples per round
/// keep one cold-cache outlier from killing a good arm while bounding
/// total exploration at roughly `4 × arms` executions.
pub const TUNE_MEASURES_PER_ARM: u32 = 2;

/// Quantized static-span skew (eighth-steps above 1.0, the
/// [`GraphFingerprint`](crate::GraphFingerprint) encoding) at or above
/// which the auto-tuner includes a work-stealing arm in the
/// configuration space. One eighth (~1.06 raw skew) sits well below the
/// static [`STEAL_SKEW_THRESHOLD`]: the tuner *measures* instead of
/// trusting the constant, so it explores stealing on mildly skewed
/// plans the heuristic would never try.
pub const TUNE_STEAL_MIN_SKEW_Q: u8 = 1;

/// Dense dimension at or above which the auto-tuner includes a
/// column-striped arm. Far below the heuristic [`STRIPE_MIN_DIM`] for
/// the same reason as [`TUNE_STEAL_MIN_SKEW_Q`]: measurement replaces
/// the threshold, the bound only prunes shapes where the per-stripe
/// index re-walk cannot possibly amortize.
pub const TUNE_STRIPE_MIN_DIM: usize = 32;

/// Dense dimension at or below which the auto-tuner includes a
/// register-tiled ([`DataPath::Tiled`](crate::DataPath)) arm: at tiny
/// dims the tiled kernel's lack of panel machinery occasionally wins,
/// while at panel-sized dims it never does.
pub const TUNE_TILED_MAX_DIM: usize = 32;

/// Dense dimension at or above which the auto-tuner adds a half-panel
/// variant of the vectorized arm (panel width halved, lane-aligned).
/// Below this the default panel already covers the dim in one sweep and
/// halving it is pure loop overhead.
pub const TUNE_HALF_PANEL_MIN_DIM: usize = 64;

/// Register-tile height of the engine's dense GEMM microkernel: this
/// many `A` rows share every loaded `B` row panel, so each `B` element
/// feeds `GEMM_MR` fused multiply-adds instead of one. Four rows ×
/// 16 lanes = 64 live f32 accumulators, which fits the 16 (32 with
/// AVX-512) architectural vector registers with spill-free headroom.
pub const GEMM_MR: usize = 4;

/// Rows per work unit of the engine's parallel GEMM. Bands are dealt to
/// pool workers (self-scheduled under `Auto`/`Stealing`, contiguous
/// spans under `Static`); 32 rows amortize the per-band dispatch while
/// keeping `workers × several` bands available for balancing on
/// GNN-sized matrices.
pub const GEMM_BAND_ROWS: usize = 32;

/// Below this many f32 elements an element-wise pass
/// ([`crate::parallel_apply_chunks`]) runs inline on the caller: a 16 K
/// element sweep finishes in a few microseconds, under the pool's
/// dispatch-plus-barrier cost.
pub const PAR_APPLY_MIN_LEN: usize = 1 << 14;

/// SpGEMM row classification: a row combining at most this many `B`
/// rows runs the sorted multi-way merge accumulator. Mirroring the
/// binary-row-merging CPU SpGEMM observation (arXiv 2206.06611), most
/// rows of a power-law adjacency matrix merge a handful of neighbor
/// lists; streaming them in column order emits the output row already
/// sorted with no scratch, no hashing, and no sort — at four ways the
/// per-entry min scan is still a couple of compares.
pub const SPGEMM_MERGE_MAX_WAYS: usize = 4;

/// SpGEMM row classification: the dense-scratch accumulator runs when
/// the row's nnz upper bound times this factor reaches `B`'s column
/// count (fill ≥ 1/8). At that density most scratch slots are touched
/// anyway, so direct indexing beats hashing and the touched-column sort
/// is the same either way; below it the dense reset-on-touch walk and
/// cold scratch lines stop paying for themselves.
pub const SPGEMM_DENSE_FILL_DIV: usize = 8;

/// Minimum slot count of the SpGEMM hash accumulator. Tiny rows still
/// get a table two cache lines wide so the load factor stays under 1/2
/// and linear probes terminate quickly.
pub const SPGEMM_HASH_MIN_SLOTS: usize = 16;

/// Ways at or below which the SpGEMM merge accumulator uses the linear
/// head scan; above it (a forced-merge strategy on a hub row) it
/// switches to the binary heap, whose `(col, way)` pop order preserves
/// the same ascending-`k` accumulation order bit for bit.
pub const SPGEMM_MERGE_SCAN_MAX_WAYS: usize = 8;

/// Tiny CPU cache model the plan uses to size feature-dimension panels.
///
/// Only order-of-magnitude accuracy matters: the panel must keep a
/// segment's working set — a few gathered `B` row panels plus the
/// accumulator row — resident in L1 while leaving headroom for the
/// streamed index/value arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheModel {
    /// Per-core L1 data cache capacity in bytes.
    pub l1_bytes: usize,
    /// Per-core L2 capacity in bytes (reserved for multi-level blocking).
    pub l2_bytes: usize,
}

impl Default for CacheModel {
    /// Conservative defaults (32 KiB L1d / 1 MiB L2) that fit every
    /// mainstream x86-64 and AArch64 core of the last decade.
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
        }
    }
}

/// Number of distinct `B` rows the panel model budgets as simultaneously
/// hot during one segment sweep.
const PANEL_RESIDENT_ROWS: usize = 8;

/// Column-panel width (in f32 columns) for sweeping a `dim`-wide dense
/// operand with `lanes`-wide accumulator blocks.
///
/// Model: reserve half of L1 for gathered `B` row panels (the other half
/// absorbs the streamed indices/values and the destination row), assume
/// [`PANEL_RESIDENT_ROWS`] rows hot at a time, and round the resulting
/// width down to a multiple of `lanes` so panels never split a wide
/// block. The result is clamped to cover `dim` in one panel when `dim`
/// already fits (the common GNN case — hidden widths of 16–128 are far
/// below the ~512-column panel a 32 KiB L1 yields).
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn panel_cols(dim: usize, lanes: usize, model: &CacheModel) -> usize {
    assert!(lanes > 0, "lane width must be positive");
    let budget = model.l1_bytes / 2;
    let raw = budget / (PANEL_RESIDENT_ROWS * std::mem::size_of::<f32>());
    let aligned = (raw / lanes).max(1) * lanes;
    aligned.min(dim.next_multiple_of(lanes).max(lanes))
}

/// Column-stripe width bound (in f32 columns) for the column-striped
/// executor: the widest stripe whose working set — [`PANEL_RESIDENT_ROWS`]
/// gathered `B` row windows plus the stripe accumulator — stays resident
/// in half of L2 (the other half absorbs the streamed index/value arrays
/// shared by every stripe). Same shape as [`panel_cols`] one cache level
/// up; like it, the result is lane-aligned and clamped to cover `dim` in
/// one stripe when `dim` already fits.
///
/// # Panics
///
/// Panics if `lanes == 0`.
pub fn stripe_panel_cols(dim: usize, lanes: usize, model: &CacheModel) -> usize {
    assert!(lanes > 0, "lane width must be positive");
    let budget = model.l2_bytes / 2;
    let raw = budget / (PANEL_RESIDENT_ROWS * std::mem::size_of::<f32>());
    let aligned = (raw / lanes).max(1) * lanes;
    aligned.min(dim.next_multiple_of(lanes).max(lanes))
}

/// Smallest useful `k`-block of the engine's blocked GEMM: below this the
/// per-block accumulator round-trip through the destination row costs
/// more than the locality buys.
const GEMM_KC_MIN: usize = 64;

/// `k`-block depth for the engine's GEMM: the deepest block whose `B`
/// panel (`kc × panel` f32) stays resident in a quarter of L2 while it
/// is reused across every register tile of a row band. A quarter — not
/// half — because the slab shares L2 with the `A` band, the destination
/// band, and (under the fused serving pipeline) concurrent SpMM
/// traffic; on AVX-512 hardware the measured throughput knee at
/// `n = 512` sits at the quarter-L2 slab, a third faster than the
/// half-L2 one. Clamped to `[`[`GEMM_KC_MIN`]`, k]` so short reductions
/// run unblocked.
///
/// Blocking `k` does **not** change results: blocks are visited in
/// ascending order and each block's accumulators are seeded from the
/// destination row, so every output element still sums its products in
/// exactly the naive loop's order.
pub fn gemm_kc(k: usize, panel: usize, model: &CacheModel) -> usize {
    let k = k.max(1);
    let bytes_per_k = panel.max(1) * std::mem::size_of::<f32>();
    let raw = (model.l2_bytes / 4) / bytes_per_k;
    raw.clamp(GEMM_KC_MIN.min(k), k)
}

/// SIMD lanes per warp on the evaluated GPU (NVidia, 32-lane warps).
pub const GPU_SIMD_LANES: usize = 32;

/// How logical threads map onto SIMD units for a given dense dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdMapping {
    /// SIMD lanes per hardware unit (warp).
    pub lanes: usize,
    /// Dense dimension size being processed.
    pub dim: usize,
    /// Number of warps each logical thread is replicated across
    /// (`> 1` when `dim > lanes`; §III-C2).
    pub warps_per_thread: usize,
    /// Number of logical threads packed into each warp
    /// (`> 1` when `dim < lanes`; §III-C3).
    pub threads_per_warp: usize,
}

impl SimdMapping {
    /// Computes the mapping for dense dimension `dim` on `lanes`-wide SIMD
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `lanes == 0`.
    pub fn for_dim(dim: usize, lanes: usize) -> Self {
        assert!(dim > 0, "dimension size must be positive");
        assert!(lanes > 0, "SIMD width must be positive");
        if dim >= lanes {
            Self {
                lanes,
                dim,
                warps_per_thread: dim.div_ceil(lanes),
                threads_per_warp: 1,
            }
        } else {
            Self {
                lanes,
                dim,
                warps_per_thread: 1,
                threads_per_warp: (lanes / dim).max(1),
            }
        }
    }

    /// Number of warps needed to run `logical_threads` threads under this
    /// mapping.
    pub fn warps_for_threads(&self, logical_threads: usize) -> usize {
        if self.warps_per_thread > 1 {
            logical_threads * self.warps_per_thread
        } else {
            logical_threads.div_ceil(self.threads_per_warp)
        }
    }

    /// Fraction of SIMD lanes doing useful work in each warp, in `(0, 1]`.
    ///
    /// When `dim` is not a multiple of `lanes`, the last replica warp
    /// carries only `dim % lanes` live lanes — but it is *shared*: the
    /// §III-C3 packing applies to the residual slice exactly as it does to
    /// whole sub-lane dimensions, so `floor(lanes / tail)` logical
    /// threads' tails ride in one warp and each thread is charged only its
    /// `lanes / floor(lanes / tail)` share. Charging every thread a full
    /// tail warp (the previous accounting) under-reported utilization at
    /// large dims — e.g. dim 96 on 64-lane units is fully packed (two
    /// 32-wide tails per warp), not 75%.
    pub fn lane_utilization(&self) -> f64 {
        if self.dim >= self.lanes {
            let used = self.dim as f64;
            let full = self.dim / self.lanes;
            let tail = self.dim % self.lanes;
            // Tail warp shared by floor(lanes / tail) threads; no tail
            // warp at all when `dim` divides evenly (`tail == 0`).
            let provisioned = match self.lanes.checked_div(tail) {
                Some(share) if share > 0 => {
                    (full * self.lanes) as f64 + self.lanes as f64 / share as f64
                }
                _ => (full * self.lanes) as f64,
            };
            used / provisioned
        } else {
            (self.threads_per_warp * self.dim) as f64 / self.lanes as f64
        }
    }
}

/// The empirically best merge-path cost per dimension size (Figure 6 of
/// the paper, sweeping costs 2–50 at each dimension).
///
/// * dims 256/512 → 55/60 (extrapolated past the figure's sweep: at
///   hidden widths this wide each logical thread is already replicated
///   8–16× across warps, so ever-larger costs — fewer threads, fewer
///   atomics — keep winning, flattening out as the dense axis dominates),
/// * dim 128 → 50 (threads already replicated 4× across warps; favour
///   fewer atomics),
/// * dim 64 → 35, dim 32 → 30, dim 16 → 20, dims 8 and 4 → 15 (buy
///   parallelism with some extra atomics),
/// * dim 2 → 50 (extreme thread divergence favours fewer warps).
///
/// Dimensions between table entries use the nearest entry (ties toward the
/// larger dimension).
pub fn default_cost_for_dim(dim: usize) -> usize {
    const TABLE: [(usize, usize); 9] = [
        (2, 50),
        (4, 15),
        (8, 15),
        (16, 20),
        (32, 30),
        (64, 35),
        (128, 50),
        (256, 55),
        (512, 60),
    ];
    assert!(dim > 0, "dimension size must be positive");
    let mut best = TABLE[0];
    let mut best_dist = usize::MAX;
    for &(d, cost) in &TABLE {
        let dist = d.abs_diff(dim);
        if dist < best_dist || (dist == best_dist && d > best.0) {
            best = (d, cost);
            best_dist = dist;
        }
    }
    best.1
}

/// Number of logical threads for a given merge-path length and cost,
/// applying the small-graph floor (§III-C1).
pub fn thread_count(merge_items: usize, cost: usize, min_threads: usize) -> usize {
    assert!(cost > 0, "merge-path cost must be positive");
    let computed = merge_items.div_ceil(cost).max(1);
    if computed < min_threads {
        min_threads.min(merge_items).max(1)
    } else {
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_matches_lanes() {
        let m = SimdMapping::for_dim(32, 32);
        assert_eq!(m.warps_per_thread, 1);
        assert_eq!(m.threads_per_warp, 1);
        assert_eq!(m.warps_for_threads(100), 100);
        assert_eq!(m.lane_utilization(), 1.0);
    }

    #[test]
    fn mapping_dim_greater_than_lanes() {
        // §III-C2: "If the dimension size is 64, each thread is executed
        // using two warps."
        let m = SimdMapping::for_dim(64, 32);
        assert_eq!(m.warps_per_thread, 2);
        assert_eq!(m.warps_for_threads(10), 20);
        let m = SimdMapping::for_dim(128, 32);
        assert_eq!(m.warps_per_thread, 4);
        // Non-multiple: 48 dims → 2 warps, but the 16-wide tail packs two
        // threads per tail warp (§III-C3 on the residual slice), so the
        // mapping is fully utilized.
        let m = SimdMapping::for_dim(48, 32);
        assert_eq!(m.warps_per_thread, 2);
        assert!((m.lane_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_warp_utilization_at_large_dims() {
        // Exact multiples at the regression dims stay fully utilized.
        for (dim, lanes) in [(96, 32), (192, 32), (384, 32), (192, 64), (384, 64)] {
            let m = SimdMapping::for_dim(dim, lanes);
            assert_eq!(
                m.lane_utilization(),
                1.0,
                "dim {dim} lanes {lanes} is an exact multiple"
            );
        }
        // dim 96 on 64-lane units: one full warp plus a 32-wide tail that
        // packs two threads — fully utilized, not the 75% the old
        // full-tail-warp accounting reported.
        let m = SimdMapping::for_dim(96, 64);
        assert_eq!(m.warps_per_thread, 2);
        assert!((m.lane_utilization() - 1.0).abs() < 1e-12);
        // A tail that does not divide the lane width still wastes its
        // packing remainder: dim 44 on 32 lanes has a 12-wide tail shared
        // by floor(32/12) = 2 threads, 16 lanes charged for 12 used.
        let m = SimdMapping::for_dim(44, 32);
        assert!((m.lane_utilization() - 44.0 / 48.0).abs() < 1e-12);
        // A tail over half the lane width cannot pack and is charged in
        // full, as before.
        let m = SimdMapping::for_dim(50, 32);
        assert!((m.lane_utilization() - 50.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn mapping_dim_smaller_than_lanes() {
        // §III-C3: "If the dimension size is 16, two threads execute on a
        // single warp."
        let m = SimdMapping::for_dim(16, 32);
        assert_eq!(m.threads_per_warp, 2);
        assert_eq!(m.warps_for_threads(10), 5);
        // §V: "At the dimension size of 2, each SIMD unit is mapped with 16
        // threads."
        let m = SimdMapping::for_dim(2, 32);
        assert_eq!(m.threads_per_warp, 16);
        assert_eq!(m.lane_utilization(), 1.0);
    }

    #[test]
    fn default_costs_match_figure6() {
        assert_eq!(default_cost_for_dim(128), 50);
        assert_eq!(default_cost_for_dim(64), 35);
        assert_eq!(default_cost_for_dim(32), 30);
        assert_eq!(default_cost_for_dim(16), 20);
        assert_eq!(default_cost_for_dim(8), 15);
        assert_eq!(default_cost_for_dim(4), 15);
        assert_eq!(default_cost_for_dim(2), 50);
        // Wide hidden layers: the table now covers 256/512 explicitly.
        assert_eq!(default_cost_for_dim(256), 55);
        assert_eq!(default_cost_for_dim(512), 60);
        // Off-table dimension snaps to the nearest entry (ties toward the
        // larger dimension: 384 is equidistant from 256 and 512).
        assert_eq!(default_cost_for_dim(24), 30);
        assert_eq!(default_cost_for_dim(384), 60);
        assert_eq!(default_cost_for_dim(4096), 60);
    }

    #[test]
    fn panel_model_aligns_and_clamps() {
        let m = CacheModel::default();
        // 32 KiB L1 → 16 KiB row budget / (8 rows × 4 B) = 512 columns.
        assert_eq!(panel_cols(4096, 16, &m), 512);
        assert_eq!(panel_cols(4096, 8, &m), 512);
        // GNN-sized dims fit in a single panel (rounded up to the lane
        // width so the wide block never splits).
        assert_eq!(panel_cols(16, 16, &m), 16);
        assert_eq!(panel_cols(32, 16, &m), 32);
        assert_eq!(panel_cols(20, 16, &m), 32);
        assert_eq!(panel_cols(0, 8, &m), 8);
        // A tiny L1 still yields at least one lane-aligned panel.
        let tiny = CacheModel {
            l1_bytes: 64,
            l2_bytes: 1024,
        };
        assert_eq!(panel_cols(4096, 16, &tiny), 16);
    }

    #[test]
    fn panel_model_covers_wide_dims_and_clamps_past_l1() {
        let m = CacheModel::default();
        // 256 and 512 still fit one L1 panel (budget is 512 columns).
        assert_eq!(panel_cols(256, 16, &m), 256);
        assert_eq!(panel_cols(512, 16, &m), 512);
        assert_eq!(panel_cols(512, 8, &m), 512);
        // Past dim = l1_bytes / 4 (8192 f32 for the 32 KiB default) the
        // panel is pinned at the cache budget, never at dim: the sweep
        // must tile.
        let past_l1 = m.l1_bytes / std::mem::size_of::<f32>() + 16;
        assert!(past_l1 > 8192);
        assert_eq!(panel_cols(past_l1, 16, &m), 512);
        assert_eq!(panel_cols(2 * past_l1, 8, &m), 512);
        // The L2 stripe bound follows the same model one level up:
        // 512 KiB budget / (8 rows × 4 B) = 16384 columns.
        assert_eq!(stripe_panel_cols(1 << 20, 16, &m), 16384);
        // GNN-sized dims fit in a single stripe, lane-rounded.
        assert_eq!(stripe_panel_cols(512, 16, &m), 512);
        assert_eq!(stripe_panel_cols(96, 32, &m), 96);
        assert_eq!(stripe_panel_cols(20, 16, &m), 32);
    }

    #[test]
    fn gemm_kc_keeps_b_panel_l2_resident() {
        let m = CacheModel::default();
        // 256 KiB / (512 cols × 4 B) = 128-deep blocks.
        assert_eq!(gemm_kc(512, 512, &m), 128);
        assert_eq!(gemm_kc(1024, 512, &m), 128);
        // Short reductions run unblocked (kc = k).
        assert_eq!(gemm_kc(128, 512, &m), 128);
        assert_eq!(gemm_kc(16, 512, &m), 16);
        assert_eq!(gemm_kc(0, 512, &m), 1);
        // Narrow panels allow deeper blocks.
        assert_eq!(gemm_kc(100_000, 16, &m), 4096);
        // A tiny L2 clamps to the minimum useful block, not below.
        let tiny = CacheModel {
            l1_bytes: 64,
            l2_bytes: 1024,
        };
        assert_eq!(gemm_kc(512, 512, &tiny), 64);
    }

    #[test]
    fn thread_count_applies_floor() {
        // Plenty of work: cost division wins.
        assert_eq!(thread_count(100_000, 20, MIN_THREADS), 5_000);
        // Small graph: floor of MIN_THREADS.
        assert_eq!(thread_count(10_000, 20, MIN_THREADS), MIN_THREADS);
        // Tiny graph: floor clamped to merge items.
        assert_eq!(thread_count(100, 20, MIN_THREADS), 100);
        assert_eq!(thread_count(0, 20, MIN_THREADS), 1);
    }
}
