//! Ablation — does degree-sort reordering rescue row-splitting?
//!
//! The classic remedy for evil rows is to *reorder* the matrix (sort rows
//! by degree) so contiguous chunks carry comparable work. MergePath-SpMM
//! claims the same balance with no reordering at all. This ablation
//! compares, on the GPU model:
//!
//! * row-splitting on the original matrix,
//! * row-splitting on the degree-sorted matrix with contiguous chunks —
//!   which backfires (the sort CONCENTRATES the heavy rows in one chunk),
//! * row-splitting on the sorted matrix with rows dealt round-robin to
//!   threads (the classic LPT-style scheme sorting actually enables),
//! * MergePath-SpMM on the original matrix, unsorted.
//!
//! Load-balance statistics ([`LoadBalance`]) show *why*: even the LPT
//! dealing cannot bound the per-thread maximum below the longest row; the
//! merge path bounds every thread's work by construction.

use std::time::Instant;

use mpspmm_bench::{banner, full_size_requested, load, SEED};
use mpspmm_core::analysis::LoadBalance;
use mpspmm_core::{
    Flush, KernelPlan, MergePathSpmm, RowSplitSpmm, Segment, SpmmKernel, ThreadPlan,
};
use mpspmm_graphs::find_dataset;
use mpspmm_simt::{lower_with_policy, GpuConfig, GpuKernel, LoweringPolicy};
use mpspmm_sparse::reorder::{degree_sort_permutation, permute_rows};
use mpspmm_sparse::CsrMatrix;

/// Rows of the (sorted) matrix dealt round-robin onto `threads` logical
/// threads: the LPT-flavoured schedule degree sorting is meant to enable.
fn dealt_row_plan(a: &CsrMatrix<f32>, threads: usize) -> KernelPlan {
    let rp = a.row_ptr();
    let mut plans = vec![ThreadPlan::default(); threads];
    for row in 0..a.rows() {
        if rp[row + 1] > rp[row] {
            plans[row % threads].segments.push(Segment {
                row,
                nz_start: rp[row],
                nz_end: rp[row + 1],
                flush: Flush::Regular,
            });
        }
    }
    KernelPlan { threads: plans }
}

const SAMPLE: [&str; 4] = ["Oregon-1", "Nell", "soc-SlashDot811", "Pubmed"];

fn main() {
    let full = full_size_requested();
    banner(
        "Ablation: reordering",
        "row-splitting ± degree sort vs MergePath-SpMM (dim 16)",
        full,
    );
    println!("sample: {SAMPLE:?}, seed {SEED}\n");

    let cfg = GpuConfig::rtx6000();
    let dim = 16;
    println!(
        "{:<16} {:>10} {:>11} {:>11} {:>9} {:>10} | {:>8} {:>8} {:>8} {:>8}",
        "Graph",
        "RS µs",
        "sortRS µs",
        "sortLPT µs",
        "sort ms",
        "MP µs",
        "imb RS",
        "imb sRS",
        "imb LPT",
        "imb MP"
    );
    for name in SAMPLE {
        let (_, a) = load(find_dataset(name).expect("in Table II"), full);
        let threads = 1024usize;

        let t0 = Instant::now();
        let perm = degree_sort_permutation(&a);
        let sorted = permute_rows(&a, &perm);
        let sort_ms = t0.elapsed().as_secs_f64() * 1e3;

        let rs = GpuKernel::RowSplit.simulate(&a, dim, &cfg).micros;
        let srs = GpuKernel::RowSplit.simulate(&sorted, dim, &cfg).micros;
        let lpt_plan = dealt_row_plan(&sorted, threads);
        lpt_plan.validate(&sorted).expect("dealt plan is valid");
        let lpt_run = lower_with_policy(
            &lpt_plan,
            dim,
            cfg.lanes,
            LoweringPolicy::merge_path(),
            sorted.cols(),
        );
        let lpt = mpspmm_simt::engine::simulate(&lpt_run, &cfg).micros;
        let mp = GpuKernel::MergePath { cost: None }
            .simulate(&a, dim, &cfg)
            .micros;

        let imb = |plan: &KernelPlan| LoadBalance::of(plan).imbalance;
        let rs_plan = RowSplitSpmm::with_threads(threads).plan(&a, dim);
        let srs_plan = RowSplitSpmm::with_threads(threads).plan(&sorted, dim);
        let mp_plan = MergePathSpmm::new().plan(&a, dim);
        println!(
            "{name:<16} {rs:>10.2} {srs:>11.2} {lpt:>11.2} {sort_ms:>9.2} {mp:>10.2} | {:>8.1} {:>8.1} {:>8.2} {:>8.2}",
            imb(&rs_plan),
            imb(&srs_plan),
            imb(&lpt_plan),
            imb(&mp_plan),
        );
    }
    println!(
        "\nReading: sorting with contiguous chunks BACKFIRES (it stacks the \
         heavy rows into one chunk); sorting with round-robin dealing (LPT) \
         balances the sums but still cannot split the longest row, so its \
         per-thread maximum — and its warp-chain tail — stays unbounded. \
         MergePath-SpMM reaches a strictly tighter bound on the ORIGINAL \
         matrix, with no sort cost and no permuted output to undo."
    );
}
