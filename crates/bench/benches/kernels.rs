//! Microbenchmarks of the real CPU SpMM kernels (plain timing harness;
//! the build environment has no criterion, so `harness = false` bench
//! targets time with `std::time::Instant` directly).
//!
//! These measure this machine's actual execution of each strategy (not
//! the machine models): plan construction + parallel execution of
//! `A × XW` at dimension 16 on a mid-sized power-law graph and a
//! structured graph.

use mpspmm_bench::time_ns;
use mpspmm_core::{
    MergePathSerialFixup, MergePathSpmm, NnzSplitSpmm, RowSplitSpmm, SerialSpmm, SpmmKernel,
};
use mpspmm_gcn::ops::random_features;
use mpspmm_graphs::{DatasetSpec, GraphClass};

fn main() {
    let inputs = [
        (
            "powerlaw-50k",
            DatasetSpec::custom("pl", GraphClass::PowerLaw, 10_000, 50_000, 1_000),
        ),
        (
            "structured-50k",
            DatasetSpec::custom("st", GraphClass::Structured, 20_000, 50_000, 8),
        ),
    ];
    for (label, spec) in inputs {
        let a = spec.synthesize(7);
        let b = random_features(a.cols(), 16, 1.0, 3);
        let kernels: Vec<(&str, Box<dyn SpmmKernel>)> = vec![
            ("serial", Box::new(SerialSpmm)),
            ("row-split", Box::new(RowSplitSpmm::with_threads(1024))),
            ("gnnadvisor", Box::new(NnzSplitSpmm::new())),
            ("mergepath", Box::new(MergePathSpmm::new())),
            (
                "mergepath-serialfixup",
                Box::new(MergePathSerialFixup::new()),
            ),
        ];
        println!("spmm/{label} ({} nnz, dim 16)", a.nnz());
        for (name, kernel) in &kernels {
            let ns = time_ns(2, 10, || {
                kernel.spmm(&a, &b).expect("shapes match");
            });
            println!(
                "  {name:<22} {:>12.0} ns/call  {:>8.3} ns/nnz",
                ns,
                ns / a.nnz() as f64
            );
        }
    }
}
