//! End-to-end GCN inference over MergePath-SpMM.
//!
//! Synthesizes a citation-network-like graph, normalizes it
//! (`Â = D^-1/2 (A+I) D^-1/2`), runs a 2-layer GCN forward pass with the
//! MergePath-SpMM aggregation kernel, and compares the paper's online
//! setting (schedule recomputed per inference) against the offline
//! setting (schedule reused).
//!
//! Run with: `cargo run --release --example gcn_inference`

use std::time::Instant;

use merge_path_spmm::core::executor::execute_parallel;
use merge_path_spmm::core::{plan_from_schedule, MergePathSpmm};
use merge_path_spmm::gcn::{online_inference, ops, GcnModel};
use merge_path_spmm::graphs::{find_dataset, gcn_normalize};
use merge_path_spmm::sparse::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pubmed-sized citation graph from the Table II registry.
    let spec = find_dataset("Pubmed").expect("Pubmed is in Table II");
    let a = spec.synthesize(42);
    println!(
        "graph: {} ({} nodes, {} edges)",
        spec.name,
        a.rows(),
        a.nnz()
    );

    // GCN preprocessing and a 2-layer model: 64 features -> 16 hidden -> 3
    // classes (hidden = the paper's default dimension).
    let a_hat = gcn_normalize(&a);
    let model = GcnModel::two_layer(64, 16, 3, 1234);
    let x = ops::random_features(a.rows(), 64, 0.3, 99);
    let kernel = MergePathSpmm::new();

    // Online: the schedule is rebuilt before the inference (Figure 8).
    let (logits, timing) = online_inference(&model, &a_hat, &x, &kernel)?;
    println!(
        "online inference: scheduling {:?} + execution {:?} ({:.2}% overhead)",
        timing.scheduling,
        timing.execution,
        timing.overhead_fraction() * 100.0
    );

    // Offline: build the schedule once, reuse it across repeated
    // aggregations of the same adjacency matrix.
    let schedule = kernel.schedule(&a_hat, 16);
    let plan = plan_from_schedule(&schedule, &a_hat);
    let hw = ops::gemm(&x, &ops::xavier_init(64, 16, 1234))?;
    let t0 = Instant::now();
    let mut reused: Option<DenseMatrix<f32>> = None;
    for _ in 0..5 {
        let (out, _) = execute_parallel(&plan, &a_hat, &hw, 4)?;
        reused = Some(out);
    }
    println!(
        "offline: 5 aggregations with a reused schedule in {:?}",
        t0.elapsed()
    );
    let reused = reused.expect("loop ran");
    assert_eq!(reused.rows(), a.rows());

    // Classify: softmax over the logits.
    let mut probs = logits;
    ops::softmax_rows(&mut probs);
    let mut class_counts = vec![0usize; probs.cols()];
    for r in 0..probs.rows() {
        let row = probs.row(r);
        let best = (0..row.len())
            .max_by(|&i, &j| row[i].partial_cmp(&row[j]).expect("finite probs"))
            .expect("non-empty row");
        class_counts[best] += 1;
    }
    println!("predicted class distribution (untrained weights): {class_counts:?}");
    println!("per-node probabilities sum to 1 — forward pass is consistent.");
    Ok(())
}
