//! Multi-shard scale-out benchmark — partitioned SpMM + GCN forward.
//!
//! The single-engine baseline holds the whole graph in one memory
//! domain: past a handful of workers its SpMM wall is pinned to the
//! node's bandwidth, not its core count (the working set here is
//! hundreds of megabytes — far past any cache). Sharding splits the
//! rows across `S` engines, each with a private arena, plan cache, and
//! worker pool — the software shape of `S` memory domains. This harness
//! quantifies that scale-out with the same method `bench_steal` uses on
//! this 1-core container: **model walls in measured units** plus **real
//! executions for every correctness claim**.
//!
//! Roofline model, per shard (and for the unsharded baseline as the
//! 1-shard case without halo traffic):
//!
//! * **compute leg** — merge items (rows + nnz) × a serial ns/item
//!   calibrated on an L2-resident graph (the engine's compute ceiling,
//!   free of DRAM stalls, as rooflines require), divided by the shard's
//!   workers;
//! * **memory leg** — a no-reuse traffic model (CSR stream + per-nnz
//!   operand-row gather + output write) over a measured streaming-copy
//!   bandwidth; each shard owns a full bandwidth domain, the baseline's
//!   workers share one;
//! * **halo leg** — sharded runs additionally gather the dense-operand
//!   rows their columns touch: local halo rows cost a copy (read +
//!   write), rows outside the shard's own band cross the interconnect,
//!   modeled at 1/4 node bandwidth.
//!
//! The wall is `max(compute, memory) + halo`, and a GCN forward chains
//! the per-layer GEMM (flops over a measured serial flop rate, operands
//! streamed) and SpMM walls. At equal *total* worker count the compute
//! legs match, so every modeled win is bandwidth scale-out priced
//! against real halo amplification — the honest trade.
//!
//! Real checks (both modes): sharded SpMM output is asserted
//! **bit-identical** to [`execute_sequential`] on the whole matrix at
//! every tested shard × worker combination, and the 4-shard GCN forward
//! is bit-identical to the 1-shard forward (DESIGN.md §2.15). Full mode
//! additionally asserts the modeled 4-shard forward speedup ≥ 2.5× over
//! the single-engine wall at equal total workers.
//!
//! Writes `BENCH_shard.json`. Pass `--smoke` for the seconds-fast tier-1
//! gate (scaled-down graph, no speedup floor: the halo fractions of a
//! tiny graph are not the large-graph regime the acceptance targets).

use mpspmm_bench::{banner, time_ns, SEED};
use mpspmm_core::executor::execute_sequential;
use mpspmm_core::{BatchMergeSpmm, ExecEngine, ShardedEngine, SpmmKernel};
use mpspmm_gcn::GcnModel;
use mpspmm_graphs::{DatasetSpec, GraphClass};
use mpspmm_sparse::{DenseMatrix, ShardedCsr};

/// Total workers split among shards — every configuration gets the same
/// compute budget, so sharding cannot win by adding cores.
const TOTAL_WORKERS: usize = 8;

/// Dense feature width of the standalone SpMM scaling curve.
const SPMM_DIM: usize = 16;

/// GCN dims: feature-sized layers keep SpMM (which scales with nnz)
/// dominant over GEMM (which scales with rows), as in the paper's
/// inference setting.
const IN_FEATURES: usize = 8;
const HIDDEN: usize = 8;
const CLASSES: usize = 4;

/// Remote halo rows cross the shard interconnect, modeled at 1/4 of a
/// node's streaming bandwidth (the classic NUMA/fabric discount).
const INTERCONNECT_SLOWDOWN: f64 = 4.0;

/// Modeled speedup floor the full run must clear (ISSUE acceptance).
const REQUIRED_FORWARD_SPEEDUP: f64 = 2.5;

/// Merge-item count: rows + nnz, the cost the planner balances on and
/// the unit `ns_per_item` is calibrated in.
fn items(rows: usize, nnz: usize) -> f64 {
    (rows + nnz) as f64
}

/// No-reuse SpMM traffic in bytes: CSR stream (8 B column index + 4 B
/// value per nnz), one dense operand row gathered per nnz, one output
/// row written per row.
fn spmm_bytes(rows: usize, nnz: usize, dim: usize) -> f64 {
    (nnz * 12 + nnz * dim * 4 + rows * dim * 4) as f64
}

/// Streamed GEMM traffic: read the activation and weight, write the
/// product.
fn gemm_bytes(rows: usize, k: usize, n: usize) -> f64 {
    ((rows * k + k * n + rows * n) * 4) as f64
}

/// Measured calibration constants, all in real units.
struct Calibration {
    /// Serial ns per merge item at each dense width used, measured on an
    /// L2-resident graph (compute ceiling).
    ns_per_item: Vec<(usize, f64)>,
    /// Serial ns per GEMM flop (multiply + add counted separately).
    ns_per_flop: f64,
    /// Streaming-copy bandwidth in bytes per nanosecond.
    bw: f64,
}

impl Calibration {
    fn item_ns(&self, dim: usize) -> f64 {
        self.ns_per_item
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, ns)| *ns)
            .expect("dim calibrated")
    }
}

fn calibrate(smoke: bool) -> Calibration {
    let (warm, iters) = if smoke { (2, 7) } else { (3, 15) };
    // ~150 KB CSR + a few-hundred-KB dense operand: resident in L2/L3,
    // so the measured rate is arithmetic + planner overhead, not DRAM.
    let cal = DatasetSpec::custom("shard-cal", GraphClass::PowerLaw, 1_500, 12_000, 300)
        .synthesize(SEED ^ 5);
    let serial = ExecEngine::with_worker_count(1);
    let kernel = BatchMergeSpmm::new();
    let mut ns_per_item = Vec::new();
    for dim in [SPMM_DIM, HIDDEN, CLASSES] {
        let b = DenseMatrix::from_fn(cal.cols(), dim, |r, c| {
            ((r * 29 + c * 13) % 23) as f32 * 0.25 - 2.5
        });
        let prep = serial.plan_cached(&kernel, &cal, dim, 0);
        let ns = time_ns(warm, iters, || {
            let _ = serial.execute_prepared(&prep, &cal, &b).unwrap();
        });
        ns_per_item.push((dim, ns / items(cal.rows(), cal.nnz())));
    }

    let h = DenseMatrix::from_fn(512, 32, |r, c| ((r * 7 + c) % 11) as f32 * 0.125 - 0.5);
    let w = DenseMatrix::from_fn(32, 32, |r, c| ((r * 3 + c * 5) % 13) as f32 * 0.25 - 1.5);
    let gemm_ns = time_ns(warm, iters, || {
        let _ = serial.gemm(&h, &w).unwrap();
    });
    let ns_per_flop = gemm_ns / (512.0 * 32.0 * 32.0 * 2.0);

    // Stream a buffer far past cache; count read + write traffic.
    let floats = if smoke { 4usize << 20 } else { 32usize << 20 };
    let src = vec![1.0f32; floats];
    let mut dst = vec![0.0f32; floats];
    let copy_ns = time_ns(1, if smoke { 3 } else { 5 }, || {
        dst.copy_from_slice(&src);
    });
    assert!(dst[floats / 2] == 1.0);
    let bw = (floats * 8) as f64 / copy_ns;

    Calibration {
        ns_per_item,
        ns_per_flop,
        bw,
    }
}

/// Per-shard halo census: (total halo rows, rows outside the own band).
fn halo_census(sharded: &ShardedCsr) -> Vec<(usize, usize)> {
    sharded
        .shards()
        .iter()
        .map(|s| {
            let band = s.row_range();
            let remote = s.halo_cols.iter().filter(|c| !band.contains(c)).count();
            (s.halo_cols.len(), remote)
        })
        .collect()
}

/// Modeled halo-gather ns for one shard at `dim`: local rows are a
/// node-bandwidth copy (read + write), remote rows cross the
/// interconnect.
fn halo_ns(halo: usize, remote: usize, dim: usize, cal: &Calibration) -> f64 {
    let local = (halo - remote) as f64 * (dim * 8) as f64 / cal.bw;
    let cross = remote as f64 * (dim * 4) as f64 * INTERCONNECT_SLOWDOWN / cal.bw;
    local + cross
}

/// Modeled SpMM wall for one engine over `rows`/`nnz` with `workers`
/// sharing one bandwidth domain.
fn spmm_wall(rows: usize, nnz: usize, dim: usize, workers: usize, cal: &Calibration) -> f64 {
    let compute = items(rows, nnz) * cal.item_ns(dim) / workers as f64;
    compute.max(spmm_bytes(rows, nnz, dim) / cal.bw)
}

/// Modeled GEMM wall (one bandwidth domain, `workers` cores).
fn gemm_wall(rows: usize, k: usize, n: usize, workers: usize, cal: &Calibration) -> f64 {
    let compute = (rows * k * n) as f64 * 2.0 * cal.ns_per_flop / workers as f64;
    compute.max(gemm_bytes(rows, k, n) / cal.bw)
}

/// Modeled sharded SpMM wall: slowest shard's roofline plus its halo
/// gather. `census` pairs with `sharded.shards()`.
fn sharded_spmm_wall(
    sharded: &ShardedCsr,
    census: &[(usize, usize)],
    dim: usize,
    workers_per_shard: usize,
    cal: &Calibration,
) -> f64 {
    sharded
        .shards()
        .iter()
        .zip(census)
        .map(|(s, &(halo, remote))| {
            spmm_wall(s.matrix.rows(), s.nnz(), dim, workers_per_shard, cal)
                + halo_ns(halo, remote, dim, cal)
        })
        .fold(0.0f64, f64::max)
}

/// Modeled two-layer GCN forward wall for the unsharded baseline.
fn forward_wall_single(rows: usize, nnz: usize, workers: usize, cal: &Calibration) -> f64 {
    gemm_wall(rows, IN_FEATURES, HIDDEN, workers, cal)
        + spmm_wall(rows, nnz, HIDDEN, workers, cal)
        + gemm_wall(rows, HIDDEN, CLASSES, workers, cal)
        + spmm_wall(rows, nnz, CLASSES, workers, cal)
}

/// Modeled two-layer GCN forward wall for a sharded engine: per layer,
/// the slowest shard's GEMM-band + SpMM + halo chain.
fn forward_wall_sharded(
    sharded: &ShardedCsr,
    census: &[(usize, usize)],
    workers_per_shard: usize,
    cal: &Calibration,
) -> f64 {
    let mut total = 0.0;
    for (k, n) in [(IN_FEATURES, HIDDEN), (HIDDEN, CLASSES)] {
        total += sharded
            .shards()
            .iter()
            .zip(census)
            .map(|(s, &(halo, remote))| {
                gemm_wall(s.matrix.rows(), k, n, workers_per_shard, cal)
                    + spmm_wall(s.matrix.rows(), s.nnz(), n, workers_per_shard, cal)
                    + halo_ns(halo, remote, n, cal)
            })
            .fold(0.0f64, f64::max);
    }
    total
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "BENCH shard",
        "multi-shard scale-out: modeled bandwidth-domain walls + real bit-identity",
        !smoke,
    );

    // Full graph: ~11x the nnz of the largest Table II input (PPI,
    // 818,716 nnz) — the scale where one memory domain is the wall.
    let (nodes, nnz, max_deg) = if smoke {
        (4_000, 40_000, 500)
    } else {
        (300_000, 9_000_000, 6_000)
    };
    let (warm, iters) = if smoke { (1, 5) } else { (1, 3) };

    println!("\nsynthesizing power-law graph: {nodes} nodes, {nnz} nnz ...");
    let a = DatasetSpec::custom("shard-powerlaw", GraphClass::PowerLaw, nodes, nnz, max_deg)
        .synthesize(SEED);
    let cal = calibrate(smoke);
    println!(
        "calibration: {} | gemm {:.3} ns/flop | stream {:.2} GB/s",
        cal.ns_per_item
            .iter()
            .map(|(d, ns)| format!("dim{d} {ns:.2} ns/item"))
            .collect::<Vec<_>>()
            .join(", "),
        cal.ns_per_flop,
        cal.bw * 1e9 / 1e9, // bytes/ns == GB/s
    );

    let b = DenseMatrix::from_fn(a.cols(), SPMM_DIM, |r, c| {
        ((r * 31 + c * 7) % 19) as f32 * 0.125 - 1.0
    });
    println!("sequential oracle on the full matrix (dim {SPMM_DIM}) ...");
    let oracle = {
        let plan = BatchMergeSpmm::new().plan(&a, SPMM_DIM);
        execute_sequential(&plan, &a, &b).unwrap().0
    };

    let x = DenseMatrix::from_fn(a.rows(), IN_FEATURES, |r, c| {
        ((r * 17 + c * 3) % 13) as f32 * 0.25 - 1.5
    });
    let model = GcnModel::two_layer(IN_FEATURES, HIDDEN, CLASSES, SEED);

    let baseline_spmm = spmm_wall(a.rows(), a.nnz(), SPMM_DIM, TOTAL_WORKERS, &cal);
    let baseline_fwd = forward_wall_single(a.rows(), a.nnz(), TOTAL_WORKERS, &cal);

    println!(
        "\n{:<7} {:>3} {:>14} {:>8} {:>14} {:>8} {:>10} {:>12} {:>9}",
        "shards",
        "w",
        "spmm model ns",
        "speedup",
        "fwd model ns",
        "speedup",
        "halo amp",
        "wall spmm ns",
        "bit-id"
    );

    let mut records = Vec::new();
    let mut forward_speedup_4 = 0.0f64;
    let mut forward_baseline: Option<DenseMatrix<f32>> = None;
    let mut all_bit_identical = true;

    for shards in [1usize, 2, 4, 8] {
        let wps = TOTAL_WORKERS / shards;
        let sharded = ShardedCsr::partition(&a, shards);
        let census = halo_census(&sharded);
        let amp = sharded.halo_amplification();
        let remote_rows: usize = census.iter().map(|&(_, r)| r).sum();

        // The 1-shard row *is* the single-engine baseline: no halo
        // gather, one bandwidth domain, all TOTAL_WORKERS cores.
        let (spmm_model, fwd_model) = if shards == 1 {
            (baseline_spmm, baseline_fwd)
        } else {
            (
                sharded_spmm_wall(&sharded, &census, SPMM_DIM, wps, &cal),
                forward_wall_sharded(&sharded, &census, wps, &cal),
            )
        };
        let spmm_speedup = baseline_spmm / spmm_model;
        let fwd_speedup = baseline_fwd / fwd_model;
        if shards == 4 {
            forward_speedup_4 = fwd_speedup;
        }

        // Real execution: wall (honest but serialized on this 1-core
        // container) and the bit-identity assertion vs the sequential
        // oracle at this exact shard x worker combination.
        let se = ShardedEngine::from_sharded(sharded, TOTAL_WORKERS);
        assert_eq!(se.workers_per_shard(), wps);
        let got = se.spmm(&b).unwrap();
        let bit_identical = got.as_slice() == oracle.as_slice();
        assert!(
            bit_identical,
            "sharded SpMM diverged from execute_sequential at shards={shards} workers={wps}"
        );
        all_bit_identical &= bit_identical;
        let wall_spmm = time_ns(warm, iters, || {
            let _ = se.spmm(&b).unwrap();
        });

        let fwd = model.forward_sharded(&se, &x).unwrap();
        match &forward_baseline {
            None => forward_baseline = Some(fwd),
            Some(base) => assert_eq!(
                fwd.as_slice(),
                base.as_slice(),
                "forward_sharded diverged from the 1-shard forward at shards={shards}"
            ),
        }

        println!(
            "{:<7} {:>3} {:>14.0} {:>7.2}x {:>14.0} {:>7.2}x {:>10.3} {:>12.0} {:>9}",
            shards,
            wps,
            spmm_model,
            spmm_speedup,
            fwd_model,
            fwd_speedup,
            amp,
            wall_spmm,
            bit_identical
        );

        records.push(format!(
            concat!(
                "    {{\"shards\": {}, \"workers_per_shard\": {}, \"total_workers\": {}, ",
                "\"model_spmm_wall_ns\": {:.0}, \"model_spmm_speedup\": {:.3}, ",
                "\"model_forward_wall_ns\": {:.0}, \"model_forward_speedup\": {:.3}, ",
                "\"halo_amplification\": {:.4}, \"remote_halo_rows\": {}, ",
                "\"wall_spmm_ns\": {:.0}, \"bit_identical\": {}}}"
            ),
            shards,
            wps,
            TOTAL_WORKERS,
            spmm_model,
            spmm_speedup,
            fwd_model,
            fwd_speedup,
            amp,
            remote_rows,
            wall_spmm,
            bit_identical
        ));
    }

    println!(
        "\n4-shard modeled forward speedup at {TOTAL_WORKERS} total workers: \
         {forward_speedup_4:.2}x (floor {REQUIRED_FORWARD_SPEEDUP:.1}x, enforced in full mode)"
    );
    if !smoke {
        assert!(
            forward_speedup_4 >= REQUIRED_FORWARD_SPEEDUP,
            "4-shard forward speedup {forward_speedup_4:.3} below the \
             {REQUIRED_FORWARD_SPEEDUP} acceptance floor"
        );
    }
    assert!(all_bit_identical);

    let json = format!(
        concat!(
            "{{\n  \"baseline\": \"single engine, {} workers, one bandwidth domain \
             (modeled roofline, measured calibrations)\",\n",
            "  \"speedup\": {:.3},\n",
            "  \"smoke\": {},\n",
            "  \"graph\": {{\"nodes\": {}, \"nnz\": {}, \"nnz_vs_largest_table2\": {:.2}}},\n",
            "  \"calibration\": {{\"ns_per_item\": {{{}}}, \"ns_per_flop\": {:.4}, ",
            "\"stream_bw_gbps\": {:.3}, \"interconnect_slowdown\": {:.1}}},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"acceptance\": {{\n",
            "    \"forward_speedup_4_shards\": {:.3},\n",
            "    \"required_min\": {:.1},\n",
            "    \"bit_identical_all_combinations\": {}\n",
            "  }}\n}}\n"
        ),
        TOTAL_WORKERS,
        forward_speedup_4,
        smoke,
        nodes,
        nnz,
        nnz as f64 / 818_716.0,
        cal.ns_per_item
            .iter()
            .map(|(d, ns)| format!("\"{d}\": {ns:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        cal.ns_per_flop,
        cal.bw,
        INTERCONNECT_SLOWDOWN,
        records.join(",\n"),
        forward_speedup_4,
        REQUIRED_FORWARD_SPEEDUP,
        all_bit_identical
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");
}
