//! Row-sharded CSR: one large graph partitioned into contiguous,
//! nnz-balanced row bands for multi-engine scale-out.
//!
//! A single execution engine caps out at one socket's workers and one
//! buffer arena. [`ShardedCsr`] cuts the adjacency matrix into `S`
//! **contiguous row shards** whose boundaries balance `rows + nnz`
//! (merge items) rather than rows — the same merge-path measure the
//! intra-engine scheduler balances threads with, applied one level up.
//! Row shards are disjoint, so each shard's output rows belong to it
//! alone and composing results is pure scatter: no cross-shard
//! reduction, no atomics, no ordering hazard.
//!
//! # Halo map
//!
//! A shard's rows reference columns anywhere in the graph, so its SpMM
//! reads rows of the dense operand `B` that other shards "own". Each
//! [`CsrShard`] carries a **halo map**: the sorted, de-duplicated set
//! of global columns its non-zeros touch ([`CsrShard::halo_cols`]).
//! The shard's sub-matrix is stored with columns **remapped** through
//! that map to a compact local index space (`0..halo_cols.len()`), and
//! [`CsrShard::gather_halo_into`] copies exactly the touched rows of
//! `B` into a compact local operand. The remap is strictly monotone,
//! so each row's non-zeros keep their storage order and each value
//! pairs with the same `B` row as before — the per-row float fold of a
//! shard execution is *identical* (bit for bit) to the unsharded one.
//! Power-law graphs keep halos small in aggregate (most columns a band
//! touches are near-band), while the worst case — every column a halo
//! — degrades to copying `B` once per shard, never to wrong answers.

use crate::{CsrMatrix, DenseMatrix, SparseFormatError};

/// One contiguous row band of a [`ShardedCsr`]: the band's sub-matrix
/// with compacted columns, plus the halo map back to global columns.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrShard {
    /// Global row index of the band's local row 0.
    pub row_start: usize,
    /// The band as its own CSR matrix: `rows()` = band height,
    /// `cols()` = `halo_cols.len()` (compact local column space).
    pub matrix: CsrMatrix<f32>,
    /// Sorted, de-duplicated global columns this band touches; local
    /// column `j` of [`matrix`](Self::matrix) is global column
    /// `halo_cols[j]`.
    pub halo_cols: Vec<usize>,
}

impl CsrShard {
    /// Global rows `[row_start, row_start + height)` this shard owns.
    pub fn row_range(&self) -> std::ops::Range<usize> {
        self.row_start..self.row_start + self.matrix.rows()
    }

    /// Non-zeros in this band.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// Copies the halo rows of `b` (row-major, `dim` columns) into
    /// `dst`, producing the compact dense operand this shard's
    /// sub-matrix multiplies against: local operand row `j` is `b`'s
    /// row `halo_cols[j]`, bytes unchanged. `dst` is resized to
    /// `halo_cols.len() * dim`.
    ///
    /// # Panics
    ///
    /// Panics if `b.cols() != dim` or a halo column exceeds `b.rows()`
    /// (prevented by construction when `b.rows()` equals the sharded
    /// matrix's column count).
    pub fn gather_halo_into(&self, b: &DenseMatrix<f32>, dim: usize, dst: &mut Vec<f32>) {
        assert_eq!(b.cols(), dim, "operand width mismatch");
        let flat = b.as_slice();
        dst.clear();
        dst.reserve(self.halo_cols.len() * dim);
        for &g in &self.halo_cols {
            dst.extend_from_slice(&flat[g * dim..][..dim]);
        }
    }

    /// [`gather_halo_into`](Self::gather_halo_into) allocating a fresh
    /// compact operand.
    pub fn gather_halo(&self, b: &DenseMatrix<f32>) -> DenseMatrix<f32> {
        let dim = b.cols();
        let mut buf = Vec::new();
        self.gather_halo_into(b, dim, &mut buf);
        DenseMatrix::from_vec(self.halo_cols.len(), dim, buf)
            .expect("gather produced halo_cols * dim elements")
    }
}

/// A matrix partitioned into contiguous, merge-item-balanced row
/// shards, each with a compact sub-CSR and halo map. See the module
/// docs for the balancing and bit-identity arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedCsr {
    rows: usize,
    cols: usize,
    nnz: usize,
    shards: Vec<CsrShard>,
}

impl ShardedCsr {
    /// Partitions `a` into `shards` contiguous row bands with
    /// merge-path-balanced boundaries: shard `k`'s boundary is the row
    /// split nearest the ideal `k/S` fraction of `rows + nnz` merge
    /// items, found by binary search on the row-pointer array. Shards
    /// never split a row (row ownership is the whole point), so a band
    /// may exceed its ideal share by at most one row's non-zeros —
    /// noise at scale-out sizes. Requesting more shards than rows (or
    /// sharding an empty matrix) yields trailing empty shards rather
    /// than an error, so callers can sweep shard counts freely.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn partition(a: &CsrMatrix<f32>, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let rp = a.row_ptr();
        let (rows, nnz) = (a.rows(), a.nnz());
        let items = rows + nnz;
        let per_shard = items.div_ceil(shards).max(1);
        let mut out = Vec::with_capacity(shards);
        // Reusable global→local column scratch; u32::MAX = "not seen
        // this shard". Sized once to the column space, reused per band.
        let mut col_map = vec![u32::MAX; a.cols()];
        let mut start_row = 0usize;
        for k in 1..=shards {
            let end_row = if k == shards {
                rows
            } else {
                // Merge items consumed after finishing rows [0, e) is
                // `e + rp[e]` — strictly increasing in e — so the
                // row-aligned split nearest shard k's ideal diagonal is
                // the smallest e with `e + rp[e] >= diag`. Binary
                // search, exactly as the intra-engine chunker does in
                // its 2-D merge space.
                let diag = (k * per_shard).min(items);
                let (mut lo, mut hi) = (start_row, rows);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if mid + rp[mid] < diag {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            };
            out.push(build_shard(a, start_row, end_row, &mut col_map));
            start_row = end_row;
        }
        debug_assert_eq!(start_row, rows);
        ShardedCsr {
            rows,
            cols: a.cols(),
            nnz,
            shards: out,
        }
    }

    /// Row count of the partitioned matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the partitioned matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total non-zeros across all shards.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The shards, in row order; bands are contiguous and disjoint and
    /// cover `0..rows` exactly.
    pub fn shards(&self) -> &[CsrShard] {
        &self.shards
    }

    /// Number of shards (as requested at partition time, including any
    /// trailing empty bands).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sum of halo sizes across shards over the column count — the
    /// gather amplification factor: 1.0 means each `B` row is copied
    /// once in aggregate; `S` is the all-boundary worst case.
    pub fn halo_amplification(&self) -> f64 {
        if self.cols == 0 {
            return 0.0;
        }
        let halo: usize = self.shards.iter().map(|s| s.halo_cols.len()).sum();
        halo as f64 / self.cols as f64
    }

    /// Reassembles the original matrix from the shards — the
    /// partition's round-trip inverse, used by tests to prove the
    /// remap lossless.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError`] if the shards do not stitch into a
    /// valid CSR (impossible for a [`partition`](Self::partition)
    /// result).
    pub fn reassemble(&self) -> Result<CsrMatrix<f32>, SparseFormatError> {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut cols = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for shard in &self.shards {
            let m = &shard.matrix;
            let base = *row_ptr.last().unwrap();
            for r in 0..m.rows() {
                row_ptr.push(base + m.row_ptr()[r + 1]);
            }
            cols.extend(m.col_indices().iter().map(|&lc| shard.halo_cols[lc]));
            vals.extend_from_slice(m.values());
        }
        CsrMatrix::new(self.rows, self.cols, row_ptr, cols, vals)
    }
}

/// Builds one shard: slices rows `[start_row, end_row)` of `a`,
/// collects the touched columns, and rewrites the band's column indices
/// through the compact monotone remap. `col_map` is caller-provided
/// scratch (`u32::MAX`-initialized, restored before returning).
fn build_shard(
    a: &CsrMatrix<f32>,
    start_row: usize,
    end_row: usize,
    col_map: &mut [u32],
) -> CsrShard {
    let rp = a.row_ptr();
    let (nz_lo, nz_hi) = (rp[start_row], rp[end_row]);
    let band_cols = &a.col_indices()[nz_lo..nz_hi];
    // Distinct touched columns, sorted — sortedness makes the remap
    // monotone, which keeps each row's non-zeros in storage order.
    let mut halo_cols: Vec<usize> = band_cols.to_vec();
    halo_cols.sort_unstable();
    halo_cols.dedup();
    for (local, &global) in halo_cols.iter().enumerate() {
        col_map[global] = local as u32;
    }
    let local_cols: Vec<usize> = band_cols.iter().map(|&g| col_map[g] as usize).collect();
    for &global in &halo_cols {
        col_map[global] = u32::MAX;
    }
    let local_rp: Vec<usize> = rp[start_row..=end_row].iter().map(|&p| p - nz_lo).collect();
    let matrix = CsrMatrix::from_parts_unchecked(
        end_row - start_row,
        halo_cols.len(),
        local_rp,
        local_cols,
        a.values()[nz_lo..nz_hi].to_vec(),
    );
    CsrShard {
        row_start: start_row,
        matrix,
        halo_cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band_matrix() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(
            6,
            6,
            &[
                (0, 1, 1.0),
                (0, 5, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
                (3, 1, 5.0),
                (3, 4, 6.0),
                (4, 4, 7.0),
                (5, 0, 8.0),
                (5, 5, 9.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_covers_rows_and_round_trips() {
        let a = band_matrix();
        for s in [1, 2, 3, 4, 6, 9] {
            let sharded = ShardedCsr::partition(&a, s);
            assert_eq!(sharded.shard_count(), s);
            let mut next = 0;
            for shard in sharded.shards() {
                assert_eq!(shard.row_start, next);
                next += shard.matrix.rows();
            }
            assert_eq!(next, a.rows());
            assert_eq!(sharded.reassemble().unwrap(), a, "shards={s}");
        }
    }

    #[test]
    fn halo_cols_are_sorted_distinct_and_remap_is_monotone() {
        let a = band_matrix();
        let sharded = ShardedCsr::partition(&a, 3);
        for shard in sharded.shards() {
            assert!(shard.halo_cols.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(shard.matrix.cols(), shard.halo_cols.len());
        }
    }

    #[test]
    fn more_shards_than_rows_yields_empty_tails() {
        let a = band_matrix();
        let sharded = ShardedCsr::partition(&a, 10);
        assert_eq!(sharded.shard_count(), 10);
        let empty = sharded
            .shards()
            .iter()
            .filter(|s| s.matrix.rows() == 0)
            .count();
        assert!(empty >= 4, "6 rows cannot fill 10 shards");
        assert_eq!(sharded.reassemble().unwrap(), a);
    }

    #[test]
    fn empty_matrix_partitions_cleanly() {
        let a = CsrMatrix::<f32>::zeros(0, 4);
        let sharded = ShardedCsr::partition(&a, 3);
        assert_eq!(sharded.shard_count(), 3);
        assert!(sharded.shards().iter().all(|s| s.nnz() == 0));
        let z = CsrMatrix::<f32>::zeros(5, 5);
        let sharded = ShardedCsr::partition(&z, 2);
        assert_eq!(sharded.reassemble().unwrap(), z);
    }

    #[test]
    fn boundaries_balance_merge_items() {
        // 1 dense row then uniform rows: the dense row's shard must not
        // also absorb half the uniform rows.
        let mut triplets: Vec<(usize, usize, f32)> = (0..40).map(|c| (0, c, 1.0)).collect();
        for r in 1..40 {
            triplets.push((r, r, 1.0));
        }
        let a = CsrMatrix::from_triplets(40, 40, &triplets).unwrap();
        let sharded = ShardedCsr::partition(&a, 2);
        let items: Vec<usize> = sharded
            .shards()
            .iter()
            .map(|s| s.matrix.rows() + s.nnz())
            .collect();
        let ideal = (a.rows() + a.nnz()) as f64 / 2.0;
        for (i, &it) in items.iter().enumerate() {
            assert!(
                (it as f64 - ideal).abs() <= 41.0,
                "shard {i} items {it} vs ideal {ideal} (one-row granularity)"
            );
        }
    }

    #[test]
    fn gather_halo_copies_exact_rows() {
        let a = band_matrix();
        let sharded = ShardedCsr::partition(&a, 3);
        let b = DenseMatrix::from_fn(6, 3, |r, c| (10 * r + c) as f32);
        for shard in sharded.shards() {
            let h = shard.gather_halo(&b);
            assert_eq!(h.rows(), shard.halo_cols.len());
            for (j, &g) in shard.halo_cols.iter().enumerate() {
                assert_eq!(h.row(j), b.row(g), "halo row {j} = global row {g}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedCsr::partition(&band_matrix(), 0);
    }
}
