//! Calibration scratchpad for the multicore model: prints Figure 9
//! scaling curves so `McConfig` constants can be tuned.

use mpspmm_core::{MergePathSpmm, NnzSplitSpmm, SpmmKernel};
use mpspmm_graphs::find_dataset;
use mpspmm_multicore::{simulate, McConfig};

fn main() {
    let core_counts = [64usize, 128, 256, 512, 1024];
    for (name, scale) in [
        ("Cora", 1usize),
        ("Pubmed", 1),
        ("Nell", 1),
        ("com-Amazon", 8),
        ("Twitter-partial", 8),
    ] {
        let spec = find_dataset(name).unwrap();
        let spec = if scale > 1 {
            spec.scaled_down(scale)
        } else {
            spec.clone()
        };
        let a = spec.synthesize(7);
        print!("{name:<16} (x1/{scale})  MergePath:");
        let mut mp64 = 0.0;
        for &cores in &core_counts {
            let cfg = McConfig::with_cores(cores);
            let plan = MergePathSpmm::with_threads(cores).plan(&a, 16);
            let r = simulate(&plan, &a, 16, &cfg);
            if cores == 64 {
                mp64 = r.cycles as f64;
            }
            print!(" {:.2}", r.cycles as f64 / mp64);
        }
        print!("   GNNAdvisor:");
        let mut g64 = 0.0;
        let mut last = (0u64, 0u64);
        for &cores in &core_counts {
            let cfg = McConfig::with_cores(cores);
            let plan = NnzSplitSpmm::new().plan(&a, 16);
            let r = simulate(&plan, &a, 16, &cfg);
            if cores == 64 {
                g64 = r.cycles as f64;
            }
            print!(" {:.2}", r.cycles as f64 / g64);
            last = (r.cycles, r.critical_memory);
        }
        // Absolute comparison at 1024 cores.
        let cfg = McConfig::with_cores(1024);
        let mp = simulate(
            &MergePathSpmm::with_threads(1024).plan(&a, 16),
            &a,
            16,
            &cfg,
        );
        println!(
            "   @1024: GNN/MP = {:.2} (memfrac MP {:.2})",
            last.0 as f64 / mp.cycles as f64,
            mp.memory_fraction()
        );
    }
}
