//! Driving the Graphite-like 1000-core simulator directly.
//!
//! Runs MergePath-SpMM and GNNAdvisor on the Table I multicore across
//! core counts for a custom evil-row graph, printing completion cycles,
//! the compute/memory breakdown, and the coherence counters that explain
//! the difference (atomic waiting, directory evictions).
//!
//! Run with: `cargo run --release --example multicore_sim`

use merge_path_spmm::core::{MergePathSpmm, NnzSplitSpmm, SpmmKernel};
use merge_path_spmm::graphs::{DatasetSpec, GraphClass};
use merge_path_spmm::multicore::{simulate, McConfig};

fn main() {
    // An aggressively skewed graph: 8,000 nodes, 40,000 edges, one
    // 3,000-edge evil row.
    let spec = DatasetSpec::custom("evil", GraphClass::PowerLaw, 8_000, 40_000, 3_000);
    let a = spec.synthesize(21);
    println!(
        "graph: {} nodes, {} nnz, evil row of {} non-zeros\n",
        a.rows(),
        a.nnz(),
        3_000
    );

    println!(
        "{:<16} {:>6} {:>10} {:>9} {:>9} {:>12} {:>11}",
        "kernel", "cores", "cycles", "compute", "memory", "atomic wait", "dir evicts"
    );
    for cores in [64usize, 256, 1024] {
        let cfg = McConfig::with_cores(cores);
        for (name, plan) in [
            (
                "MergePath-SpMM",
                MergePathSpmm::with_threads(cores).plan(&a, 16),
            ),
            ("GNNAdvisor", NnzSplitSpmm::new().plan(&a, 16)),
        ] {
            plan.validate(&a).expect("kernels produce valid plans");
            let r = simulate(&plan, &a, 16, &cfg);
            println!(
                "{name:<16} {cores:>6} {:>10} {:>9} {:>9} {:>12} {:>11}",
                r.cycles,
                r.critical_compute,
                r.critical_memory,
                r.atomic_wait_cycles,
                r.directory_evictions,
            );
        }
    }

    println!(
        "\nGNNAdvisor's fine-grain atomic updates to the evil row become \
         coherence ping-pong as cores multiply; MergePath-SpMM's two \
         atomics per thread keep the wait cycles bounded."
    );
}
