//! Benchmark of the constrained 2-D binary search — the inner primitive
//! of Algorithm 1 (one call per thread boundary). Plain `Instant` timing
//! loop (no criterion in the offline build).

use mpspmm_bench::time_ns;
use mpspmm_core::merge_path_search;
use mpspmm_graphs::{DatasetSpec, GraphClass};

fn main() {
    for (label, nodes, nnz, max_deg) in [
        ("10k", 10_000usize, 50_000usize, 500usize),
        ("300k", 300_000, 1_500_000, 2_000),
    ] {
        let a = DatasetSpec::custom("pl", GraphClass::PowerLaw, nodes, nnz, max_deg).synthesize(7);
        let row_end = &a.row_ptr()[1..];
        let total = a.merge_items();
        let mut sink = 0usize;
        let ns = time_ns(3, 20, || {
            // Sweep 1024 evenly spaced diagonals (one schedule build's
            // worth of searches at the paper's thread floor).
            let mut acc = 0usize;
            for t in 0..1024usize {
                let diag = t * total / 1024;
                acc += merge_path_search(diag, row_end, a.nnz()).row;
            }
            sink = sink.wrapping_add(acc);
        });
        println!(
            "merge_path_search/{label}: {:>12.0} ns per 1024-search sweep ({:.1} ns/search, checksum {sink})",
            ns,
            ns / 1024.0
        );
    }
}
