//! The MergePath-SpMM kernel — Algorithm 2 of the paper.
//!
//! The merge-path schedule equitably splits `rows + nnz` merge items among
//! logical threads (see [`Schedule`]). A thread's first and last rows may
//! be *partial* (shared with neighbouring threads); MergePath-SpMM
//! accumulates those in thread-local storage and flushes them with a
//! **single atomic update each**, while all in-between *complete* rows are
//! written with regular stores. This confines synchronization to at most
//! two output updates per thread — the paper's central idea.

use mpspmm_sparse::CsrMatrix;

use crate::merge_path::Schedule;
use crate::plan::{Flush, KernelPlan, Segment, ThreadPlan};
use crate::tuning::{default_cost_for_dim, thread_count, MIN_THREADS};

use super::SpmmKernel;

/// How MergePath-SpMM picks its logical-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostPolicy {
    /// Use the paper's empirically tuned merge-path cost for the dense
    /// dimension (Figure 6 table), with the §III-C minimum-thread floor.
    Auto,
    /// Fixed merge-path cost (work items per thread), with the
    /// minimum-thread floor.
    FixedCost(usize),
    /// Exact logical-thread count (used by the multicore evaluation, which
    /// pins one thread per core).
    FixedThreads(usize),
}

/// The proposed load-balanced SpMM kernel (Algorithm 2).
///
/// # Example
///
/// ```
/// use mpspmm_core::{MergePathSpmm, SpmmKernel};
/// use mpspmm_sparse::{CsrMatrix, DenseMatrix};
///
/// let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0f32), (2, 0, 1.0)])?;
/// let b = DenseMatrix::from_fn(3, 4, |r, c| (r + c) as f32);
/// let kernel = MergePathSpmm::with_threads(2);
/// let (c, stats) = kernel.spmm_with_stats(&a, &b)?;
/// assert_eq!(c.get(0, 0), 2.0); // 2 * B[1, 0]
/// assert_eq!(stats.total_nnz(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePathSpmm {
    policy: CostPolicy,
    min_threads: usize,
}

impl MergePathSpmm {
    /// Auto-tuned kernel: per-dimension merge-path cost from the paper's
    /// Figure 6 table and the 1024-thread small-graph floor.
    pub fn new() -> Self {
        Self {
            policy: CostPolicy::Auto,
            min_threads: MIN_THREADS,
        }
    }

    /// Kernel with a fixed merge-path cost (the Figure 6 sweep parameter).
    pub fn with_cost(cost: usize) -> Self {
        assert!(cost > 0, "merge-path cost must be positive");
        Self {
            policy: CostPolicy::FixedCost(cost),
            min_threads: MIN_THREADS,
        }
    }

    /// Kernel with an exact logical-thread count (one thread per simulated
    /// core in the §V-D multicore evaluation).
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Self {
            policy: CostPolicy::FixedThreads(threads),
            min_threads: 1,
        }
    }

    /// Overrides the minimum-thread floor (default 1024; §III-C1).
    pub fn min_threads(mut self, min_threads: usize) -> Self {
        self.min_threads = min_threads.max(1);
        self
    }

    /// The active cost policy.
    pub fn policy(&self) -> CostPolicy {
        self.policy
    }

    /// Builds the merge-path schedule this kernel would use for `a` at
    /// dense dimension `dim`.
    ///
    /// In the paper's **offline** setting the schedule is computed once
    /// and reused across inferences; pair this with
    /// [`plan_from_schedule`] to amortize it. The **online** setting
    /// (Figure 8) rebuilds it per inference — simply call
    /// [`SpmmKernel::spmm`] each time.
    pub fn schedule(&self, a: &CsrMatrix<f32>, dim: usize) -> Schedule {
        let threads = match self.policy {
            CostPolicy::Auto => {
                thread_count(a.merge_items(), default_cost_for_dim(dim), self.min_threads)
            }
            CostPolicy::FixedCost(cost) => thread_count(a.merge_items(), cost, self.min_threads),
            CostPolicy::FixedThreads(threads) => threads,
        };
        Schedule::build(a, threads)
    }
}

impl Default for MergePathSpmm {
    fn default() -> Self {
        Self::new()
    }
}

impl SpmmKernel for MergePathSpmm {
    fn name(&self) -> &'static str {
        "MergePath-SpMM"
    }

    fn plan(&self, a: &CsrMatrix<f32>, dim: usize) -> KernelPlan {
        plan_from_schedule(&self.schedule(a, dim), a)
    }

    fn config_fingerprint(&self) -> u64 {
        let (tag, value) = match self.policy {
            CostPolicy::Auto => (0u64, 0u64),
            CostPolicy::FixedCost(cost) => (1, cost as u64),
            CostPolicy::FixedThreads(threads) => (2, threads as u64),
        };
        super::mix_config(&[tag, value, self.min_threads as u64])
    }
}

/// Lowers a merge-path [`Schedule`] to Algorithm 2's per-thread work.
///
/// For each thread assignment (start/end merge coordinates):
///
/// * a **partial start row** (`start_nz ≠ 0` in the paper's encoding)
///   accumulates locally and flushes atomically (Algorithm 2 lines 4–5 /
///   8–9);
/// * **complete rows** in between write their outputs directly
///   (lines 14–15);
/// * a **partial end row** (`end_nz ≠ 0`) accumulates locally and flushes
///   atomically (lines 12–13).
///
/// Following the paper, the end row is marked partial whenever the
/// thread's boundary falls inside it — even when it lands exactly after
/// the row's last non-zero, in which case the atomic update is
/// conservative but harmless.
///
/// # Panics
///
/// Panics if the schedule was built for a different matrix shape.
pub fn plan_from_schedule(schedule: &Schedule, a: &CsrMatrix<f32>) -> KernelPlan {
    assert!(
        schedule.matches(a),
        "schedule was built for a {}x? matrix with {} nnz, got {}x{} with {}",
        schedule.rows(),
        schedule.nnz(),
        a.rows(),
        a.cols(),
        a.nnz()
    );
    let rp = a.row_ptr();
    let threads = schedule
        .assignments()
        .iter()
        .map(|asg| {
            let mut segments = Vec::new();
            if asg.is_empty() {
                return ThreadPlan::default();
            }
            let (i0, j0) = (asg.start.row, asg.start.nnz);
            let (i1, j1) = (asg.end.row, asg.end.nnz);
            if i0 == i1 {
                // The whole assignment sits inside one row (Algorithm 2
                // lines 3–6): the row is partial by construction.
                if j1 > j0 {
                    segments.push(Segment {
                        row: i0,
                        nz_start: j0,
                        nz_end: j1,
                        flush: Flush::Atomic,
                    });
                }
            } else {
                // Start row: partial iff the thread starts mid-row
                // (lines 8–10); complete otherwise — and then exclusively
                // owned, because the previous thread ended exactly at its
                // head.
                if rp[i0 + 1] > j0 {
                    segments.push(Segment {
                        row: i0,
                        nz_start: j0,
                        nz_end: rp[i0 + 1],
                        flush: if j0 > rp[i0] {
                            Flush::Atomic
                        } else {
                            Flush::Regular
                        },
                    });
                }
                // Complete middle rows (lines 14–15).
                for row in i0 + 1..i1 {
                    if rp[row + 1] > rp[row] {
                        segments.push(Segment {
                            row,
                            nz_start: rp[row],
                            nz_end: rp[row + 1],
                            flush: Flush::Regular,
                        });
                    }
                }
                // End row: partial iff the boundary falls inside it
                // (lines 11–13).
                if j1 > rp[i1] {
                    segments.push(Segment {
                        row: i1,
                        nz_start: rp[i1],
                        nz_end: j1,
                        flush: Flush::Atomic,
                    });
                }
            }
            ThreadPlan { segments }
        })
        .collect();
    KernelPlan { threads }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{
        check_kernel, check_vector_path_bit_identical, random_matrix,
    };
    use super::*;
    use crate::plan::Flush;

    #[test]
    fn vector_path_is_bit_identical() {
        let a = random_matrix(60, 60, 400, 33);
        for dim in [1, 5, 16, 33] {
            check_vector_path_bit_identical(&MergePathSpmm::with_threads(7), &a, dim);
            check_vector_path_bit_identical(&MergePathSpmm::with_cost(5), &a, dim);
        }
    }

    #[test]
    fn matches_oracle_on_random_matrices() {
        for seed in 0..5 {
            let a = random_matrix(60, 60, 400, seed);
            for threads in [1, 2, 3, 7, 16, 64] {
                check_kernel(&MergePathSpmm::with_threads(threads), &a, 8);
            }
            check_kernel(&MergePathSpmm::new(), &a, 16);
            check_kernel(&MergePathSpmm::with_cost(5), &a, 4);
        }
    }

    #[test]
    fn atomics_confined_to_partial_rows() {
        // A matrix dominated by one evil row split across many threads:
        // every thread gets at most two atomic flushes.
        let a = random_matrix(50, 50, 300, 3);
        let kernel = MergePathSpmm::with_threads(16);
        let plan = kernel.plan(&a, 16);
        for tp in &plan.threads {
            let atomics = tp
                .segments
                .iter()
                .filter(|s| s.flush == Flush::Atomic && !s.is_empty())
                .count();
            assert!(atomics <= 2, "thread has {atomics} atomic flushes");
        }
    }

    #[test]
    fn single_thread_plan_has_no_atomics() {
        let a = random_matrix(40, 40, 200, 1);
        let plan = MergePathSpmm::with_threads(1).plan(&a, 16);
        let stats = plan.write_stats();
        assert_eq!(stats.atomic_row_updates, 0);
        assert_eq!(stats.regular_nnz, a.nnz());
    }

    #[test]
    fn evil_row_is_split_across_threads() {
        // Row 0 holds 100 of 150 nnz; with 10 threads, merge-path must
        // shard it (row-splitting could not).
        let mut triplets: Vec<(usize, usize, f32)> = (0..100).map(|c| (0, c, 1.0)).collect();
        for r in 1..51 {
            triplets.push((r, r, 1.0));
        }
        let a = CsrMatrix::from_triplets(101, 101, &triplets).unwrap();
        let plan = MergePathSpmm::with_threads(10).plan(&a, 16);
        let owners = plan
            .iter_segments()
            .filter(|(_, s)| s.row == 0)
            .map(|(t, _)| t)
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            owners.len() >= 4,
            "evil row should span many threads, got {owners:?}"
        );
        plan.validate(&a).unwrap();
    }

    #[test]
    fn write_stats_split_between_atomic_and_regular() {
        let a = random_matrix(80, 80, 500, 9);
        let kernel = MergePathSpmm::with_threads(8);
        let b = super::super::test_support::random_dense(80, 8, 5);
        let (_, stats) = kernel.spmm_with_stats(&a, &b).unwrap();
        assert_eq!(stats.total_nnz(), a.nnz());
        assert!(stats.atomic_row_updates > 0, "8 threads must share rows");
        assert!(stats.regular_row_writes > 0, "most rows are complete");
        assert_eq!(stats.serial_nnz, 0, "MergePath-SpMM has no serial phase");
    }

    #[test]
    fn auto_policy_respects_min_thread_floor() {
        let a = random_matrix(100, 100, 600, 2);
        // merge items = 700; auto cost for dim 16 is 20 → 35 threads,
        // below the floor → clamped up to min(1024, 700) = 700.
        let schedule = MergePathSpmm::new().schedule(&a, 16);
        assert_eq!(schedule.num_threads(), 700);
        let schedule = MergePathSpmm::new().min_threads(8).schedule(&a, 16);
        assert_eq!(schedule.num_threads(), 35);
    }

    #[test]
    fn offline_schedule_reuse_matches_online() {
        let a = random_matrix(60, 60, 350, 4);
        let kernel = MergePathSpmm::with_threads(12);
        let b = super::super::test_support::random_dense(60, 16, 8);
        // Online: plan built inside spmm.
        let (online, _) = kernel.spmm_sequential(&a, &b).unwrap();
        // Offline: schedule built once, reused.
        let schedule = kernel.schedule(&a, 16);
        let plan = plan_from_schedule(&schedule, &a);
        let (offline, _) = crate::executor::execute_sequential(&plan, &a, &b).unwrap();
        assert_eq!(online, offline);
    }

    #[test]
    #[should_panic(expected = "schedule was built for")]
    fn schedule_shape_mismatch_panics() {
        let a = random_matrix(30, 30, 100, 1);
        let other = random_matrix(31, 31, 100, 1);
        let schedule = MergePathSpmm::with_threads(4).schedule(&a, 16);
        let _ = plan_from_schedule(&schedule, &other);
    }
}
