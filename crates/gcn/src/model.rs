//! GCN layers and models over pluggable SpMM kernels.

use mpspmm_core::{
    parallel_apply_chunks, spgemm_flops_upper_bound, Epilogue, ExecEngine, Schedule, ShardedEngine,
    SpmmKernel,
};
use mpspmm_sparse::{CsrMatrix, DenseMatrix, SparseFormatError};

use crate::ops::{gemm, Activation};

/// One graph-convolution layer: `H' = σ(Â · H · W + b)`.
///
/// The forward pass computes the dense combination `H × W` first, then the
/// sparse aggregation `Â × (HW)` through the supplied [`SpmmKernel`] —
/// the `A × (X × W)` multiplication order all the paper's accelerators
/// implement (§II). The optional per-column bias `b` and the activation
/// form the layer's epilogue; on the cached engine path they are fused
/// into the aggregation's store stage ([`Epilogue`]) instead of
/// re-streaming the output.
#[derive(Debug, Clone, PartialEq)]
pub struct GcnLayer {
    weight: DenseMatrix<f32>,
    bias: Option<Vec<f32>>,
    activation: Activation,
    /// Precomputed fused form of `bias` + `activation`; `None` when the
    /// activation has no store-stage form (sigmoid) and the cached path
    /// must fall back to a separate element-wise pass.
    epilogue: Option<Epilogue>,
}

/// `bias` repeated `blocks` times — the combined-width epilogue of a
/// batched aggregation whose blocks all share one layer width.
fn tile_bias(bias: &[f32], blocks: usize) -> Vec<f32> {
    let mut tiled = Vec::with_capacity(bias.len() * blocks);
    for _ in 0..blocks {
        tiled.extend_from_slice(bias);
    }
    tiled
}

fn build_epilogue(bias: &Option<Vec<f32>>, activation: Activation) -> Option<Epilogue> {
    match (bias, activation) {
        (None, Activation::Identity) => Some(Epilogue::None),
        (None, Activation::Relu) => Some(Epilogue::Relu),
        (Some(b), Activation::Identity) => Some(Epilogue::Bias(b.clone())),
        (Some(b), Activation::Relu) => Some(Epilogue::BiasRelu(b.clone())),
        (_, Activation::Sigmoid) => None,
    }
}

impl GcnLayer {
    /// Creates a layer from a trained/initialized weight matrix.
    pub fn new(weight: DenseMatrix<f32>, activation: Activation) -> Self {
        let bias = None;
        let epilogue = build_epilogue(&bias, activation);
        Self {
            weight,
            bias,
            activation,
            epilogue,
        }
    }

    /// Creates a layer with a per-output-column bias: `σ(Â·H·W + b)`.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weight.cols()`.
    pub fn with_bias(weight: DenseMatrix<f32>, bias: Vec<f32>, activation: Activation) -> Self {
        assert_eq!(
            bias.len(),
            weight.cols(),
            "bias width must match output features"
        );
        let bias = Some(bias);
        let epilogue = build_epilogue(&bias, activation);
        Self {
            weight,
            bias,
            activation,
            epilogue,
        }
    }

    /// The layer's input feature width.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// The layer's output feature width (the SpMM dense dimension).
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// The layer's per-column bias, if any.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// The store-stage form of this layer's bias + activation, when one
    /// exists (sigmoid has none and always runs unfused).
    pub fn epilogue(&self) -> Option<&Epilogue> {
        self.epilogue.as_ref()
    }

    /// The unfused epilogue: bias add then activation, each a separate
    /// pass over `out`. The fused engine path produces element-identical
    /// results without these extra passes.
    fn apply_unfused(&self, out: &mut DenseMatrix<f32>) {
        if let Some(bias) = &self.bias {
            let cols = out.cols();
            if cols > 0 {
                parallel_apply_chunks(out.as_mut_slice(), cols, |_, span| {
                    for row in span.chunks_mut(cols) {
                        for (v, &b) in row.iter_mut().zip(bias) {
                            *v += b;
                        }
                    }
                });
            }
        }
        self.activation.apply(out);
    }

    /// Forward pass: `σ(Â × (H × W) + b)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when the feature or
    /// adjacency shapes are inconsistent.
    pub fn forward(
        &self,
        a_hat: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let hw = gemm(h, &self.weight)?;
        let mut out = kernel.spmm(a_hat, &hw)?;
        self.apply_unfused(&mut out);
        Ok(out)
    }

    /// Forward pass through `engine`'s plan cache as one fused pipeline:
    /// the dense combination `H × W` runs on the engine's parallel
    /// k-blocked GEMM ([`ExecEngine::gemm`]), and the aggregation applies
    /// the layer's bias/activation [`Epilogue`] at the SpMM store stage
    /// instead of re-streaming the output afterwards. The merge-path
    /// scheduling for `Â` at this layer's output width is computed at
    /// most once per graph `epoch` and reused on every subsequent call —
    /// the offline setting of the paper's Figure 8, made automatic. Wide
    /// output widths (128+) route the aggregation through the engine's
    /// column-striped scheduler automatically — no per-layer
    /// configuration, the fused epilogue is applied per stripe.
    ///
    /// The dense product `H × W` is recycled into the engine's buffer
    /// arena once the aggregation has consumed it, so after warm-up the
    /// per-layer scratch comes from the pool instead of the allocator.
    ///
    /// `epoch` must change whenever `a_hat`'s sparsity pattern does
    /// (`GraphStream::generation` in `mpspmm-graphs` is the intended
    /// source).
    ///
    /// Use this entry point when `h` is dense (hidden-layer activations);
    /// for the moderately sparse raw feature matrix of a model's first
    /// layer, [`forward_cached_sparse_features`]
    /// (Self::forward_cached_sparse_features) keeps the zero-skipping
    /// combination instead.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when the feature or
    /// adjacency shapes are inconsistent.
    pub fn forward_cached(
        &self,
        a_hat: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let hw = engine.gemm(h, &self.weight)?;
        self.aggregate_fused(a_hat, hw, kernel, engine, epoch)
    }

    /// [`forward_cached`](Self::forward_cached) for a *moderately sparse*
    /// dense-stored `h` (a model's raw input features): the combination
    /// uses the naive zero-skipping GEMM — most products are against
    /// stored zeros there, so the per-element branch pays for itself —
    /// while the aggregation still runs fused on the engine.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when the feature or
    /// adjacency shapes are inconsistent.
    pub fn forward_cached_sparse_features(
        &self,
        a_hat: &CsrMatrix<f32>,
        h: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let hw = gemm(h, &self.weight)?;
        self.aggregate_fused(a_hat, hw, kernel, engine, epoch)
    }

    /// The shared aggregation tail of the cached paths: fused epilogue
    /// when the activation has a store-stage form, separate passes
    /// otherwise; `hw` is recycled into the arena either way.
    fn aggregate_fused(
        &self,
        a_hat: &CsrMatrix<f32>,
        hw: DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        match &self.epilogue {
            Some(epi) => {
                let (out, _) = engine.spmm_cached_fused(kernel, a_hat, &hw, epoch, epi)?;
                engine.recycle(hw);
                Ok(out)
            }
            None => {
                let (mut out, _) = engine.spmm_cached(kernel, a_hat, &hw, epoch)?;
                engine.recycle(hw);
                self.apply_unfused(&mut out);
                Ok(out)
            }
        }
    }

    /// Mega-batch aggregation: always the plain prepared run plus one
    /// flat bias/activation sweep. The fused store-stage epilogue pays a
    /// per-row dispatch that a tens-of-thousands-row packed batch of
    /// tiny rows turns into the dominant cost; the unfused composition
    /// computes the same bits (DESIGN.md §2.10) with one streaming pass.
    fn aggregate_mega(
        &self,
        a_hat: &CsrMatrix<f32>,
        hw: DenseMatrix<f32>,
        prep: &mpspmm_core::PreparedPlan,
        engine: &ExecEngine,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let (mut out, _) = engine.execute_prepared(prep, a_hat, &hw)?;
        engine.recycle(hw);
        self.apply_unfused(&mut out);
        Ok(out)
    }

    /// Unified-engine forward pass with a *sparse* input feature matrix:
    /// both the combination `X × W` and the aggregation `Â × (XW)` run on
    /// the same SpMM kernel (§II: "a workload-efficient computation
    /// paradigm that uses a unified SpMM engine").
    ///
    /// The input features `X` are moderately sparse (nodes lack most
    /// features), so the first multiplication is also a CSR×dense SpMM —
    /// a rectangular one, which the merge-path decomposition handles
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when shapes are
    /// inconsistent.
    pub fn forward_sparse_input(
        &self,
        a_hat: &CsrMatrix<f32>,
        x: &CsrMatrix<f32>,
        kernel: &dyn SpmmKernel,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let xw = kernel.spmm(x, &self.weight)?;
        let mut out = kernel.spmm(a_hat, &xw)?;
        self.apply_unfused(&mut out);
        Ok(out)
    }
}

/// A multi-layer GCN model.
///
/// # Example
///
/// ```
/// use mpspmm_core::MergePathSpmm;
/// use mpspmm_gcn::{GcnModel, ops};
/// use mpspmm_sparse::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(4, 4, &[(0, 1, 0.5f32), (1, 0, 0.5)])?;
/// let model = GcnModel::two_layer(8, 16, 3, 42);
/// let x = ops::random_features(4, 8, 0.5, 1);
/// let out = model.forward(&a, &x, &MergePathSpmm::with_threads(4))?;
/// assert_eq!(out.cols(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GcnModel {
    layers: Vec<GcnLayer>,
}

impl GcnModel {
    /// Builds a model from explicit layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive widths are inconsistent.
    pub fn new(layers: Vec<GcnLayer>) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_features(),
                w[1].in_features(),
                "layer widths must chain"
            );
        }
        Self { layers }
    }

    /// The standard 2-layer GCN of the paper's evaluation:
    /// `features → hidden → classes` with ReLU in between
    /// (hidden = the "dimension size" swept in Figures 6–7).
    pub fn two_layer(features: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Self::new(vec![
            GcnLayer::new(
                crate::ops::xavier_init(features, hidden, seed),
                Activation::Relu,
            ),
            GcnLayer::new(
                crate::ops::xavier_init(hidden, classes, seed ^ 1),
                Activation::Identity,
            ),
        ])
    }

    /// The model's layers.
    pub fn layers(&self) -> &[GcnLayer] {
        &self.layers
    }

    /// Input feature width the model expects (first layer's `in_features`).
    pub fn in_features(&self) -> usize {
        self.layers[0].in_features()
    }

    /// Output feature width the model produces (last layer's
    /// `out_features`).
    pub fn out_features(&self) -> usize {
        self.layers[self.layers.len() - 1].out_features()
    }

    /// Widest layer output — the representative dense dimension a serving
    /// layer plans this model's aggregation SpMM at (a [`PreparedPlan`]'s
    /// row classification is width-independent, so one plan serves every
    /// layer and every batch width).
    ///
    /// [`PreparedPlan`]: mpspmm_core::PreparedPlan
    pub fn max_features(&self) -> usize {
        self.layers
            .iter()
            .map(GcnLayer::out_features)
            .max()
            .expect("model has at least one layer")
    }

    /// Full forward pass through all layers with one SpMM kernel.
    ///
    /// Each layer invokes the kernel once — a 2-layer model is the
    /// "2 kernel invocations" scenario of the paper's Figure 8 online
    /// overhead study.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when shapes are
    /// inconsistent.
    pub fn forward(
        &self,
        a_hat: &CsrMatrix<f32>,
        x: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let mut h = self.layers[0].forward(a_hat, x, kernel)?;
        for layer in &self.layers[1..] {
            h = layer.forward(a_hat, &h, kernel)?;
        }
        Ok(h)
    }

    /// Pre-plans every layer's aggregation SpMM into `engine`'s cache:
    /// one prepared plan per distinct output width, each carrying the
    /// packed u32 column indices the vectorized data path consumes. After
    /// warming, even the *first* [`forward_cached`](Self::forward_cached)
    /// on this graph epoch runs entirely from cached, pre-packed plans —
    /// the paper's offline setting (Figure 8) with the panel/packing work
    /// hoisted out of inference too.
    ///
    /// Returns the number of plans inserted or refreshed.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when `a_hat` is not
    /// square (aggregation requires `Â` to map nodes to nodes).
    pub fn warm_plans(
        &self,
        a_hat: &CsrMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<usize, SparseFormatError> {
        if a_hat.rows() != a_hat.cols() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (a_hat.rows(), a_hat.cols()),
                right: (a_hat.cols(), a_hat.cols()),
            });
        }
        let mut warmed = 0;
        let mut widths: Vec<usize> = self.layers.iter().map(GcnLayer::out_features).collect();
        widths.sort_unstable();
        widths.dedup();
        for dim in widths {
            engine.plan_cached(kernel, a_hat, dim, epoch);
            warmed += 1;
        }
        Ok(warmed)
    }

    /// Full forward pass through `engine`'s plan cache as a fused
    /// pipeline (see [`GcnLayer::forward_cached`]): after the first
    /// inference on a graph epoch, every layer's SpMM skips planning
    /// entirely; each layer is one engine GEMM plus one SpMM with the
    /// bias/activation epilogue fused into the store stage.
    ///
    /// Layer 0 consumes the raw feature matrix — moderately sparse, so
    /// its combination keeps the zero-skipping GEMM
    /// ([`GcnLayer::forward_cached_sparse_features`]); hidden layers'
    /// dense activations go through the engine's blocked GEMM.
    ///
    /// Inter-layer activations ping-pong through the engine's buffer
    /// arena: each layer's input is recycled as soon as the next
    /// activation exists, so a steady-state forward pass allocates no
    /// fresh activation buffers regardless of depth.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when shapes are
    /// inconsistent.
    pub fn forward_cached(
        &self,
        a_hat: &CsrMatrix<f32>,
        x: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let mut h =
            self.layers[0].forward_cached_sparse_features(a_hat, x, kernel, engine, epoch)?;
        for layer in &self.layers[1..] {
            let next = layer.forward_cached(a_hat, &h, kernel, engine, epoch)?;
            engine.recycle(std::mem::replace(&mut h, next));
        }
        Ok(h)
    }

    /// Full forward pass on a [`ShardedEngine`]: every layer's dense
    /// combination `H × W` *and* its aggregation `Â × (HW)` run as row
    /// bands across the shard engines, with each layer's bias/activation
    /// fused into the shard SpMM's store stage when it has a store-stage
    /// form (sigmoid falls back to a separate element-wise pass, exactly
    /// as [`forward_cached`](Self::forward_cached) does).
    ///
    /// Unlike `forward_cached`, layer 0's combination uses the engines'
    /// blocked dense GEMM rather than the zero-skipping sparse-features
    /// GEMM — sharded forwards at *every* shard count therefore agree
    /// bit-for-bit with each other (S=1 is the oracle for S>1), which is
    /// the invariant `shard_oracle` sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when `x`'s shape is
    /// inconsistent with the sharded graph or the model.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows()` differs from the sharded graph's node count
    /// (the sharded GEMM's operand contract).
    pub fn forward_sharded(
        &self,
        sharded: &ShardedEngine,
        x: &DenseMatrix<f32>,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        let mut h = None;
        for layer in &self.layers {
            let g = sharded.gemm(h.as_ref().unwrap_or(x), &layer.weight)?;
            let next = match layer.epilogue() {
                Some(epi) => sharded.spmm_fused(&g, epi)?,
                None => {
                    let mut out = sharded.spmm(&g)?;
                    layer.apply_unfused(&mut out);
                    out
                }
            };
            h = Some(next);
        }
        Ok(h.unwrap_or_else(|| x.clone()))
    }

    /// Batched forward pass over several independent feature matrices on
    /// the *same* graph, sharing every aggregation SpMM: per layer, each
    /// request's dense combination `H_i × W` is computed separately, the
    /// products are concatenated column-wise, and **one** engine run
    /// aggregates `Â × [H_0W | H_1W | …]` for the whole batch — the
    /// dense-column batching of Batched SpMM for GCN serving, valid
    /// because `Â (H_i W)` only ever reads `H_i W`'s own columns.
    ///
    /// `prep` is the graph's prepared aggregation plan (row
    /// classification is width-independent, so any plan built for `a_hat`
    /// works at every batch width; [`GcnModel::max_features`] is the
    /// conventional planning dimension). Returns one output matrix per
    /// input block, in order.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when `a_hat` or any
    /// block's shape is inconsistent with the model.
    pub fn forward_batched_prepared(
        &self,
        a_hat: &CsrMatrix<f32>,
        prep: &mpspmm_core::PreparedPlan,
        blocks: &[&DenseMatrix<f32>],
        engine: &ExecEngine,
    ) -> Result<Vec<DenseMatrix<f32>>, SparseFormatError> {
        if blocks.is_empty() {
            return Ok(Vec::new());
        }
        let mut hs: Vec<DenseMatrix<f32>> = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut products = Vec::with_capacity(blocks.len());
            for j in 0..blocks.len() {
                let h = if i == 0 { blocks[j] } else { &hs[j] };
                // Layer 0 sees the requests' moderately sparse raw
                // features (zero-skipping GEMM); hidden layers see dense
                // activations (engine blocked GEMM).
                products.push(if i == 0 {
                    gemm(h, &layer.weight)?
                } else {
                    engine.gemm(h, &layer.weight)?
                });
            }
            let refs: Vec<&DenseMatrix<f32>> = products.iter().collect();
            // Every block in a model batch has this layer's output width,
            // so a per-block bias tiles to a combined-width bias and the
            // whole batch epilogue fuses into the one aggregation run.
            let batch_epi = layer.epilogue.as_ref().map(|epi| match epi {
                Epilogue::Bias(b) => Epilogue::Bias(tile_bias(b, blocks.len())),
                Epilogue::BiasRelu(b) => Epilogue::BiasRelu(tile_bias(b, blocks.len())),
                uniform => uniform.clone(),
            });
            let aggregated = match batch_epi {
                Some(epi) => engine.execute_prepared_batch_fused(prep, a_hat, &refs, &epi)?,
                None => {
                    let mut agg = engine.execute_prepared_batch(prep, a_hat, &refs)?;
                    for out in &mut agg {
                        layer.apply_unfused(out);
                    }
                    agg
                }
            };
            drop(refs);
            // The per-request products and the previous layer's
            // activations are dead now: hand both back to the arena so
            // the next layer (and the next batch) reuse them.
            for p in products {
                engine.recycle(p);
            }
            for old in std::mem::replace(&mut hs, aggregated) {
                engine.recycle(old);
            }
        }
        Ok(hs)
    }

    /// [`forward_batched_prepared`](Self::forward_batched_prepared) with
    /// the plan fetched from (or inserted into) `engine`'s cache at this
    /// model's [`max_features`](Self::max_features) dimension — the
    /// convenience entry point for callers that do not hold a graph
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when shapes are
    /// inconsistent.
    pub fn forward_batched(
        &self,
        a_hat: &CsrMatrix<f32>,
        blocks: &[&DenseMatrix<f32>],
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
    ) -> Result<Vec<DenseMatrix<f32>>, SparseFormatError> {
        let prep = engine.plan_cached(kernel, a_hat, self.max_features(), epoch);
        self.forward_batched_prepared(a_hat, &prep, blocks, engine)
    }

    /// Forward pass over a **block-diagonal mega-batch**: `a_hat` packs
    /// many small graphs on the diagonal (see
    /// [`BlockDiagCsr`](mpspmm_sparse::BlockDiagCsr)) and `stacked`
    /// vertically stacks their feature matrices in the same order. Every
    /// layer is then **one** GEMM over the stacked rows plus **one**
    /// SpMM over the packed adjacency — the whole batch pays a single
    /// dispatch per layer, however many graphs it holds.
    ///
    /// This is exact, not approximate: block-diagonality means row band
    /// `i` of `Â_pack × H` reads only `H`'s band `i`, which is
    /// `Â_i × H_i` — each graph's forward is computed as if it ran
    /// alone, and the per-column bias/activation epilogue is uniform
    /// across bands. Callers scatter per-graph outputs back out of the
    /// returned matrix's row bands.
    ///
    /// `prep` is the packed adjacency's prepared plan, normally from
    /// [`ExecEngine::plan_batch_cached`] so successive windows of
    /// similar composition skip planning entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when `stacked`'s
    /// shape is inconsistent with `a_hat` or the model.
    pub fn forward_mega_batched(
        &self,
        a_hat: &CsrMatrix<f32>,
        prep: &mpspmm_core::PreparedPlan,
        stacked: &DenseMatrix<f32>,
        engine: &ExecEngine,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        if stacked.cols() != self.in_features() {
            return Err(SparseFormatError::ShapeMismatch {
                left: (a_hat.cols(), self.in_features()),
                right: (stacked.rows(), stacked.cols()),
            });
        }
        // Every combination — layer 0 included — runs on the engine's
        // k-blocked GEMM: stacked request features behave like dense
        // activations (thousands of unrelated rows), so the zero-skip
        // branch of the sparse-features path would only cost.
        //
        // Aggregation deliberately skips the fused epilogue: at
        // mega-batch row counts the per-row fused bookkeeping costs more
        // than one flat bias/activation sweep over the finished output,
        // and `spmm → epilogue` is element-for-element identical to the
        // fused composition (DESIGN.md §2.10), so bit-identity with the
        // per-graph oracle is preserved.
        let first = &self.layers[0];
        let hw = engine.gemm(stacked, &first.weight)?;
        let mut h = first.aggregate_mega(a_hat, hw, prep, engine)?;
        for layer in &self.layers[1..] {
            let hw = engine.gemm(&h, &layer.weight)?;
            let next = layer.aggregate_mega(a_hat, hw, prep, engine)?;
            engine.recycle(std::mem::replace(&mut h, next));
        }
        Ok(h)
    }

    /// Sum of all layers' output widths — the Σd term of the two-hop
    /// crossover model.
    fn sum_features(&self) -> usize {
        self.layers.iter().map(GcnLayer::out_features).sum()
    }

    /// Forward pass with **two-hop aggregation**: every layer computes
    /// `σ(Â² · H · W + b)` instead of the usual one-hop `Â · H · W` —
    /// the propagation rule of 2-hop GCN variants. `path` picks how
    /// `Â²` is realized (see [`TwoHopPath`]); the default
    /// [`Auto`](TwoHopPath::Auto) resolves by the flop crossover model.
    ///
    /// On the [`Squared`](TwoHopPath::Squared) path the engine's
    /// SpGEMM ([`ExecEngine::spgemm`]) materializes `Â² = Â × Â` once
    /// and each layer aggregates through it with a derived plan epoch
    /// (`epoch | 1 << 63`): `Â²` can share `Â`'s exact shape *and* nnz
    /// (a permutation matrix, say), and the plan cache must never hand
    /// one matrix the other's plan. Callers therefore must keep bit 63
    /// of their own epochs clear — graph-stream generations do.
    ///
    /// The two paths are mathematically equal but associate the f32
    /// reductions differently (`Â·(Â·HW)` vs `(Â·Â)·HW`), so their
    /// outputs agree to rounding, not bit-for-bit — same contract as
    /// any kernel-vs-kernel comparison in this crate.
    ///
    /// # Errors
    ///
    /// Returns [`SparseFormatError::ShapeMismatch`] when shapes are
    /// inconsistent.
    pub fn forward_two_hop(
        &self,
        a_hat: &CsrMatrix<f32>,
        x: &DenseMatrix<f32>,
        kernel: &dyn SpmmKernel,
        engine: &ExecEngine,
        epoch: u64,
        path: TwoHopPath,
    ) -> Result<DenseMatrix<f32>, SparseFormatError> {
        match path.resolve(a_hat, self.sum_features()) {
            TwoHopPath::Squared => {
                let a2 = engine.spgemm(a_hat, a_hat)?;
                self.forward_cached(&a2, x, kernel, engine, epoch | 1 << 63)
            }
            _ => {
                let mut h: Option<DenseMatrix<f32>> = None;
                for layer in &self.layers {
                    // Layer 0 keeps the zero-skipping combination for the
                    // moderately sparse raw features, like forward_cached.
                    let hw = match &h {
                        None => gemm(x, &layer.weight)?,
                        Some(prev) => engine.gemm(prev, &layer.weight)?,
                    };
                    let (inner, _) = engine.spmm_cached(kernel, a_hat, &hw, epoch)?;
                    engine.recycle(hw);
                    let out = layer.aggregate_fused(a_hat, inner, kernel, engine, epoch)?;
                    if let Some(prev) = h.replace(out) {
                        engine.recycle(prev);
                    }
                }
                Ok(h.expect("model has at least one layer"))
            }
        }
    }
}

/// How [`GcnModel::forward_two_hop`] realizes the two-hop propagation
/// `Â² · (H W)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TwoHopPath {
    /// `Â · (Â · (H W))` — two SpMMs per layer, `Â²` never
    /// materialized. Wins when `Â²` would be much denser than `Â`
    /// (flops scale with `nnz(Â²)` on the other path).
    Chained,
    /// `(Â · Â) · (H W)` — one SpGEMM up front, then a single SpMM per
    /// layer against the materialized square. Wins when the layer-width
    /// sum is large enough to amortize the SpGEMM.
    Squared,
    /// Flop-model crossover via [`resolve`](Self::resolve).
    #[default]
    Auto,
}

impl TwoHopPath {
    /// Resolves [`Auto`](Self::Auto) for a model whose layer output
    /// widths sum to `sum_dims`: chained costs `2 · nnz(Â) · Σd`
    /// multiply-adds; squared costs the SpGEMM's flop upper bound
    /// ([`spgemm_flops_upper_bound`]) once plus at most `ub · Σd` for
    /// the per-layer SpMMs (`ub ≥ nnz(Â²)`, so the model is
    /// conservative about squaring). Pinned variants return themselves;
    /// the result is never `Auto`.
    pub fn resolve(self, a_hat: &CsrMatrix<f32>, sum_dims: usize) -> TwoHopPath {
        match self {
            TwoHopPath::Auto => {
                let chained = 2 * a_hat.nnz() * sum_dims;
                let ub = spgemm_flops_upper_bound(a_hat, a_hat);
                let squared = ub + ub * sum_dims;
                if squared < chained {
                    TwoHopPath::Squared
                } else {
                    TwoHopPath::Chained
                }
            }
            pinned => pinned,
        }
    }
}

/// Online-vs-offline inference driver (Figure 8, §III-D and §V-C).
///
/// * **Online**: the MergePath-SpMM schedule is recomputed before the
///   inference (the graph may have changed) — the scheduling cost is paid
///   on every invocation.
/// * **Offline**: a prebuilt [`Schedule`] is reused across inferences.
///
/// [`InferenceTiming`] reports the split so the harness can compute the
/// scheduling-overhead percentage the paper reports (~2% geomean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceTiming {
    /// Time spent computing the merge-path schedule.
    pub scheduling: std::time::Duration,
    /// Time spent in the dense GEMMs and SpMM kernels.
    pub execution: std::time::Duration,
}

impl InferenceTiming {
    /// Scheduling overhead as a fraction of total time, in `[0, 1]`.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.scheduling + self.execution;
        if total.is_zero() {
            0.0
        } else {
            self.scheduling.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Runs a 2-layer-style online inference: rebuilds the merge-path schedule,
/// then runs the model, timing both phases.
///
/// # Errors
///
/// Returns [`SparseFormatError::ShapeMismatch`] when shapes are
/// inconsistent.
pub fn online_inference(
    model: &GcnModel,
    a_hat: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    kernel: &mpspmm_core::MergePathSpmm,
) -> Result<(DenseMatrix<f32>, InferenceTiming), SparseFormatError> {
    // The online setting computes the schedule before the kernel
    // invocations (§V-C: "the MergePath-SpMM schedule is computed and
    // stored in global memory before two kernel invocations").
    let dim = model.layers[0].out_features();
    let t0 = std::time::Instant::now();
    let schedule: Schedule = kernel.schedule(a_hat, dim);
    let scheduling = t0.elapsed();
    // Keep the schedule alive as the kernels would reuse it; the kernel
    // trait rebuilds internally, so we charge only the measured
    // scheduling time separately.
    let _ = &schedule;
    let t1 = std::time::Instant::now();
    let out = model.forward(a_hat, x, kernel)?;
    let execution = t1.elapsed();
    Ok((
        out,
        InferenceTiming {
            scheduling,
            execution,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{random_features, xavier_init};
    use mpspmm_core::{MergePathSpmm, NnzSplitSpmm, SerialSpmm};
    use mpspmm_graphs::{gcn_normalize, DatasetSpec, GraphClass};

    fn small_graph() -> CsrMatrix<f32> {
        let spec = DatasetSpec::custom("t", GraphClass::PowerLaw, 100, 400, 30);
        gcn_normalize(&spec.synthesize(3))
    }

    #[test]
    fn mega_batched_forward_matches_per_graph_forward() {
        use mpspmm_core::{BatchMergeSpmm, BatchShapeClass};
        use mpspmm_sparse::BlockDiagCsr;
        use std::sync::Arc;

        let graphs: Vec<Arc<CsrMatrix<f32>>> = (0..4)
            .map(|i| {
                let spec =
                    DatasetSpec::custom("m", GraphClass::Structured, 20 + i * 3, 60 + i * 10, 6);
                Arc::new(gcn_normalize(&spec.synthesize(i as u64)))
            })
            .collect();
        let model = GcnModel::two_layer(8, 12, 3, 42);
        let feats: Vec<DenseMatrix<f32>> = graphs
            .iter()
            .enumerate()
            .map(|(i, g)| random_features(g.rows(), 8, 0.6, i as u64))
            .collect();

        let pack = BlockDiagCsr::build(&graphs).unwrap();
        let stacked = pack
            .stack_features(&feats.iter().collect::<Vec<_>>())
            .unwrap();
        let engine = ExecEngine::new(2);
        let class = BatchShapeClass::from_graphs(
            graphs
                .iter()
                .map(|g| (g.rows(), g.nnz(), g.structure_hash())),
        );
        let prep = engine.plan_batch_cached(
            &BatchMergeSpmm::new(),
            pack.matrix(),
            model.max_features(),
            &class,
        );
        let packed_out = model
            .forward_mega_batched(pack.matrix(), &prep, &stacked, &engine)
            .unwrap();
        assert_eq!(packed_out.rows(), pack.rows());

        // Per-graph reference on a 1-worker engine with an unsplit-row
        // plan: the same flat per-row fold, so bands must match bitwise.
        let ref_engine = ExecEngine::new(1);
        for (i, (g, x)) in graphs.iter().zip(&feats).enumerate() {
            let expect = model
                .forward_cached(g, x, &MergePathSpmm::with_threads(1), &ref_engine, i as u64)
                .unwrap();
            let band = pack.scatter_block(&packed_out, i);
            assert_eq!(band, expect, "graph {i} band differs");
        }
    }

    #[test]
    fn mega_batched_rejects_bad_feature_width() {
        use mpspmm_core::BatchMergeSpmm;
        let a = small_graph();
        let model = GcnModel::two_layer(8, 12, 3, 1);
        let engine = ExecEngine::new(1);
        let prep = engine.plan_cached(&BatchMergeSpmm::new(), &a, model.max_features(), 0);
        let bad = DenseMatrix::zeros(a.rows(), 5);
        assert!(matches!(
            model.forward_mega_batched(&a, &prep, &bad, &engine),
            Err(SparseFormatError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn two_layer_forward_has_expected_shape() {
        let a = small_graph();
        let model = GcnModel::two_layer(32, 16, 7, 11);
        let x = random_features(100, 32, 0.4, 2);
        let out = model.forward(&a, &x, &SerialSpmm).unwrap();
        assert_eq!(out.rows(), 100);
        assert_eq!(out.cols(), 7);
    }

    #[test]
    fn kernels_produce_matching_inference_results() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 8, 4, 5);
        let x = random_features(100, 16, 0.4, 9);
        let serial = model.forward(&a, &x, &SerialSpmm).unwrap();
        let mp = model
            .forward(&a, &x, &MergePathSpmm::with_threads(8))
            .unwrap();
        let gnn = model.forward(&a, &x, &NnzSplitSpmm::new()).unwrap();
        assert!(mp.approx_eq(&serial, 1e-3).unwrap());
        assert!(gnn.approx_eq(&serial, 1e-3).unwrap());
    }

    #[test]
    fn relu_between_layers_bounds_hidden_values() {
        let a = small_graph();
        let model = GcnModel::two_layer(8, 4, 2, 1);
        let x = random_features(100, 8, 0.5, 1);
        let h1 = model.layers()[0].forward(&a, &x, &SerialSpmm).unwrap();
        assert!(h1.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn unified_engine_matches_dense_gemm_path() {
        // Running X×W on the SpMM engine must compute the same layer
        // output as the dense GEMM path.
        let a = small_graph();
        let layer = GcnLayer::new(xavier_init(12, 8, 4), Activation::Relu);
        let x_dense = random_features(100, 12, 0.4, 6);
        let x_sparse = crate::ops::random_sparse_features(100, 12, 0.4, 6);
        let kernel = MergePathSpmm::with_threads(8);
        let via_gemm = layer.forward(&a, &x_dense, &kernel).unwrap();
        let via_spmm = layer.forward_sparse_input(&a, &x_sparse, &kernel).unwrap();
        assert!(via_spmm.approx_eq(&via_gemm, 1e-3).unwrap());
    }

    #[test]
    fn online_inference_reports_timing() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 16, 4, 2);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let (out, timing) = online_inference(&model, &a, &x, &kernel).unwrap();
        assert_eq!(out.rows(), 100);
        assert!(timing.overhead_fraction() >= 0.0 && timing.overhead_fraction() <= 1.0);
    }

    #[test]
    fn cached_forward_matches_plain_forward_and_hits_cache() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 16, 4, 2);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        let plain = model.forward(&a, &x, &kernel).unwrap();
        for _ in 0..10 {
            let out = model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
            assert!(out.approx_eq(&plain, 1e-4).unwrap());
        }
        let stats = engine.stats();
        // One planning miss per distinct layer width (hidden=16, classes=4),
        // everything after that served from the cache: 18 hits / 20 calls.
        assert_eq!(stats.plan_cache_misses, 2);
        assert_eq!(stats.plan_cache_hits, 18);
        assert!(stats.hit_rate() >= 0.9);
    }

    #[test]
    fn cached_forward_reaches_zero_allocation_steady_state() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 16, 4, 2);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        // Warm up: first passes populate the arena with the activation
        // and H×W scratch shapes this model cycles through.
        let mut outs = Vec::new();
        for _ in 0..2 {
            outs.push(model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap());
        }
        for out in outs.drain(..) {
            engine.recycle(out);
        }
        let warm_misses = engine.stats().arena_misses;
        let warm_reuses = engine.stats().arena_reuses;
        for _ in 0..5 {
            let out = model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
            engine.recycle(out);
        }
        let stats = engine.stats();
        assert_eq!(
            stats.arena_misses, warm_misses,
            "steady-state inference must not allocate fresh engine buffers"
        );
        assert!(stats.arena_reuses > warm_reuses);
    }

    #[test]
    fn warm_plans_makes_first_inference_all_hits() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 16, 4, 2);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        // Two distinct layer widths (hidden=16, classes=4) → two plans.
        let warmed = model.warm_plans(&a, &kernel, &engine, 0).unwrap();
        assert_eq!(warmed, 2);
        assert_eq!(engine.stats().plan_cache_misses, 2);
        let plain = model.forward(&a, &x, &kernel).unwrap();
        let out = model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
        assert!(out.approx_eq(&plain, 1e-4).unwrap());
        let stats = engine.stats();
        // The first inference never plans: both layer SpMMs hit.
        assert_eq!(stats.plan_cache_misses, 2);
        assert_eq!(stats.plan_cache_hits, 2);
    }

    #[test]
    fn warm_plans_rejects_rectangular_adjacency() {
        let a = CsrMatrix::from_triplets(3, 4, &[(0, 1, 1.0f32)]).unwrap();
        let model = GcnModel::two_layer(8, 4, 2, 1);
        let engine = ExecEngine::new(1);
        assert!(model
            .warm_plans(&a, &MergePathSpmm::new(), &engine, 0)
            .is_err());
    }

    #[test]
    fn epoch_bump_invalidates_cached_plans() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 16, 4, 2);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
        model.forward_cached(&a, &x, &kernel, &engine, 1).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_misses, 4);
        assert_eq!(stats.plan_cache_hits, 0);
    }

    #[test]
    fn two_hop_paths_agree_and_match_explicit_square() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 12, 5, 8);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        // Reference: forward through the oracle square (bit-identical
        // to the engine's SpGEMM) on the plain kernel path.
        let a2 = mpspmm_core::spgemm_sequential(&a, &a).unwrap();
        let reference = model.forward(&a2, &x, &kernel).unwrap();
        let squared = model
            .forward_two_hop(&a, &x, &kernel, &engine, 0, TwoHopPath::Squared)
            .unwrap();
        let chained = model
            .forward_two_hop(&a, &x, &kernel, &engine, 0, TwoHopPath::Chained)
            .unwrap();
        assert!(squared.approx_eq(&reference, 1e-4).unwrap());
        // Different association (Â·(Â·HW) vs (Â·Â)·HW): rounding-level
        // agreement only.
        assert!(chained.approx_eq(&reference, 1e-3).unwrap());
        assert!(engine.stats().spgemm.rows > 0, "Squared path ran SpGEMM");
    }

    #[test]
    fn two_hop_auto_resolves_by_flop_model_and_never_returns_auto() {
        let a = small_graph();
        for dims in [1usize, 4096] {
            let resolved = TwoHopPath::Auto.resolve(&a, dims);
            assert_ne!(resolved, TwoHopPath::Auto);
        }
        // Pinned variants resolve to themselves.
        assert_eq!(TwoHopPath::Chained.resolve(&a, 16), TwoHopPath::Chained);
        assert_eq!(TwoHopPath::Squared.resolve(&a, 16), TwoHopPath::Squared);
        // A huge width sum amortizes the one-off SpGEMM iff the square's
        // flop bound beats re-streaming Â twice per layer; check the
        // model picks consistently with its own arithmetic.
        let ub = mpspmm_core::spgemm_flops_upper_bound(&a, &a);
        let dims = 4096;
        let want = if ub + ub * dims < 2 * a.nnz() * dims {
            TwoHopPath::Squared
        } else {
            TwoHopPath::Chained
        };
        assert_eq!(TwoHopPath::Auto.resolve(&a, dims), want);
    }

    #[test]
    fn two_hop_squared_epoch_never_collides_with_one_hop_plans() {
        // Â and Â² plans must coexist: run both against one engine and
        // check the derived epoch kept their caches separate (4 misses:
        // 2 widths × {Â, Â²}, zero evictions or cross-hits).
        let a = small_graph();
        let model = GcnModel::two_layer(16, 16, 4, 2);
        let x = random_features(100, 16, 0.4, 3);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        let one_hop = model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
        model
            .forward_two_hop(&a, &x, &kernel, &engine, 0, TwoHopPath::Squared)
            .unwrap();
        let again = model.forward_cached(&a, &x, &kernel, &engine, 0).unwrap();
        assert!(again.approx_eq(&one_hop, 0.0).unwrap(), "plans not mixed");
        let stats = engine.stats();
        assert_eq!(stats.plan_cache_misses, 4);
    }

    #[test]
    fn feature_width_accessors() {
        let model = GcnModel::two_layer(32, 16, 7, 11);
        assert_eq!(model.in_features(), 32);
        assert_eq!(model.out_features(), 7);
        assert_eq!(model.max_features(), 16);
    }

    #[test]
    fn batched_forward_matches_per_request_forward() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 12, 5, 8);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(2);
        let blocks: Vec<_> = (0..4)
            .map(|i| random_features(100, 16, 0.4, 40 + i))
            .collect();
        let refs: Vec<&_> = blocks.iter().collect();
        let batched = model
            .forward_batched(&a, &refs, &kernel, &engine, 0)
            .unwrap();
        assert_eq!(batched.len(), 4);
        for (x, out) in blocks.iter().zip(&batched) {
            let solo = model.forward(&a, x, &kernel).unwrap();
            assert_eq!(out.rows(), 100);
            assert_eq!(out.cols(), 5);
            assert!(out.approx_eq(&solo, 1e-3).unwrap());
        }
        // One plan at max_features serves every layer and batch width.
        assert_eq!(engine.stats().plan_cache_misses, 1);
    }

    #[test]
    fn batched_forward_single_worker_is_exact_vs_prepared_path() {
        let a = small_graph();
        let model = GcnModel::two_layer(8, 8, 3, 4);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(1);
        let prep = engine.plan_cached(&kernel, &a, model.max_features(), 0);
        let blocks: Vec<_> = (0..3)
            .map(|i| random_features(100, 8, 0.5, 70 + i))
            .collect();
        let refs: Vec<&_> = blocks.iter().collect();
        let batched = model
            .forward_batched_prepared(&a, &prep, &refs, &engine)
            .unwrap();
        // Per-request forward through the same prepared plan: the batch
        // merely regroups columns, so single-worker results are
        // bit-identical.
        for (x, out) in blocks.iter().zip(&batched) {
            let solo = model
                .forward_batched_prepared(&a, &prep, &[x], &engine)
                .unwrap();
            assert_eq!(out.max_abs_diff(&solo[0]).unwrap(), 0.0);
        }
        assert!(model
            .forward_batched_prepared(&a, &prep, &[], &engine)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batched_forward_rejects_bad_block_shape() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 8, 4, 5);
        let kernel = MergePathSpmm::new();
        let engine = ExecEngine::new(1);
        let good = random_features(100, 16, 0.4, 1);
        let bad = random_features(100, 10, 0.4, 2);
        assert!(model
            .forward_batched(&a, &[&good, &bad], &kernel, &engine, 0)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "layer widths must chain")]
    fn mismatched_layer_widths_panic() {
        GcnModel::new(vec![
            GcnLayer::new(xavier_init(8, 4, 0), Activation::Relu),
            GcnLayer::new(xavier_init(5, 2, 0), Activation::Identity),
        ]);
    }

    #[test]
    fn layer_shape_mismatch_is_an_error() {
        let a = small_graph();
        let model = GcnModel::two_layer(16, 8, 4, 5);
        let bad_x = random_features(100, 10, 0.4, 9);
        assert!(model.forward(&a, &bad_x, &SerialSpmm).is_err());
    }
}
